package experiments

import (
	"fmt"
	"math"

	"locble/internal/core"
	"locble/internal/env"
	"locble/internal/imu"
	"locble/internal/ml"
	"locble/internal/rf"
	"locble/internal/rng"
	"locble/internal/sigproc"
	"locble/internal/sim"
)

// Fig2RSSVsDistance reproduces Fig. 2: RSS readings while walking away
// from a beacon on the same path, on three phones — different constant
// offsets, same trend.
func Fig2RSSVsDistance(opt Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig2",
		Title:  "RSS reading on different smartphones",
		XLabel: "distance (m)",
		YLabel: "RSSI (dBm)",
	}
	phones := []rf.DeviceProfile{rf.IPhone5s, rf.Nexus5x, rf.MotoNex6}
	for _, phone := range phones {
		sc := sim.Scenario{
			// Beacon at the origin; the observer starts next to it and
			// walks away to 6.1 m (the paper's axis range).
			Beacons:      []sim.BeaconSpec{{Name: "b", X: 0, Y: 0}},
			ObserverPlan: imu.Plan{Segments: []imu.Segment{{Heading: 0, Distance: 6.1}}, StartX: 0.5},
			Phone:        phone,
			EnvModel:     sim.StaticEnv(rf.LOS),
			Seed:         opt.Seed + 2,
		}
		tr, err := sim.Run(sc)
		if err != nil {
			return nil, err
		}
		s := Series{Name: phone.Name}
		for _, o := range tr.Observations["b"] {
			s.X = append(s.X, o.TrueDist)
			s.Y = append(s.Y, o.RSSI)
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"expect: per-phone constant offsets, shared decreasing trend (paper Fig. 2)")
	return fig, nil
}

// Fig4Filtering reproduces Fig. 4: theoretical vs raw vs BF vs BF+AKF
// over a 40 s trace, plus RMSE-to-theoretical per variant.
func Fig4Filtering(opt Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig4",
		Title:  "Performance of BF + AKF filtering design",
		XLabel: "time (s)",
		YLabel: "RSSI (dBm)",
	}
	// 40 s walk: away then back, NLOS-ish fluctuation (paper trace spans
	// −90…−65 dBm).
	sc := sim.Scenario{
		Beacons: []sim.BeaconSpec{{Name: "b", X: 14, Y: 0}},
		ObserverPlan: imu.Plan{Segments: []imu.Segment{
			{Heading: 0, Distance: 11},
			{Heading: math.Pi, Distance: 11},
			{Heading: 0, Distance: 11},
		}, StartX: 0},
		EnvModel: sim.StaticEnv(rf.PLOS),
		Seed:     opt.Seed + 4,
	}
	tr, err := sim.Run(sc)
	if err != nil {
		return nil, err
	}
	obs := tr.Observations["b"]
	raw := Series{Name: "Raw"}
	theo := Series{Name: "Theoretical"}
	var rawVals []float64
	ch := rf.NewChannel(rf.PLOS, rf.EstimoteBeacon, tr.Phone, rng.New(1))
	for _, o := range obs {
		raw.X = append(raw.X, o.T)
		raw.Y = append(raw.Y, o.RSSI)
		rawVals = append(rawVals, o.RSSI)
		theo.X = append(theo.X, o.T)
		theo.Y = append(theo.Y, ch.MeanRSSI(o.TrueDist))
	}
	fs := tr.Phone.SampleRateHz
	bf, err := sigproc.NewButterworth(6, 0.9, fs)
	if err != nil {
		return nil, err
	}
	bfOut := bf.Filter(rawVals)
	bf2, _ := sigproc.NewButterworth(6, 0.9, fs)
	akf := sigproc.NewAKF(bf2)
	akfOut := akf.Filter(rawVals)

	bfSeries := Series{Name: "BF", X: raw.X, Y: bfOut}
	akfSeries := Series{Name: "BF + AKF", X: raw.X, Y: akfOut}
	fig.Series = []Series{theo, raw, bfSeries, akfSeries}

	rmse := func(ys []float64) float64 {
		s := 0.0
		for i := range ys {
			d := ys[i] - theo.Y[i]
			s += d * d
		}
		return math.Sqrt(s / float64(len(ys)))
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("RMSE to theoretical: raw %.2f dB, BF %.2f dB, BF+AKF %.2f dB",
			rmse(raw.Y), rmse(bfOut), rmse(akfOut)),
		"expect: BF smooth but delayed; BF+AKF tracks changes with less delay (paper Fig. 4)")
	return fig, nil
}

// Fig5Preprocessing reproduces Fig. 5: CDFs of estimation error with the
// full pipeline vs without ANF vs without EnvAware, in environments with
// NLOS→LOS transitions and p-LOS interruptions (paper envs #2–#4).
func Fig5Preprocessing(opt Options) (*Figure, error) {
	trials := opt.trials(30, 6)
	variants := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"w. ANF + EnvAware", func(c *core.Config) {}},
		{"w./o. ANF", func(c *core.Config) { c.DisableANF = true }},
		{"w./o. EnvAware", func(c *core.Config) { c.DisableEnvAware = true }},
	}
	fig := &Figure{
		ID:     "fig5",
		Title:  "Performance of data preprocessing",
		XLabel: "estimation error (m)",
		YLabel: "CDF",
	}
	for _, v := range variants {
		cfg := core.DefaultConfig()
		// The ANF ablation compares the *streaming* pipeline the paper
		// runs (BF+AKF) against raw data, so use the streaming filter
		// here rather than the zero-phase batch default.
		cfg.StreamingANF = true
		v.mod(&cfg)
		eng, err := core.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		var errs []float64
		for trial := 0; trial < trials; trial++ {
			seed := opt.Seed + int64(trial)*17
			// Alternate the two transition geometries the paper's envs
			// #2–#4 exercise: walking out of a shadow (NLOS→LOS) and
			// walking into one (LOS→NLOS); random passers-by inject
			// p-LOS episodes on top.
			src := rng.New(seed)
			var walls *sim.WallEnv
			if trial%2 == 0 {
				walls = &sim.WallEnv{Walls: []sim.Wall{{X1: 2.0, Y1: -2, X2: 2.0, Y2: 9, Class: rf.NLOS}}}
			} else {
				walls = &sim.WallEnv{Walls: []sim.Wall{{X1: 4.5, Y1: 1.0, X2: 8.5, Y2: 1.0, Class: rf.NLOS}}}
			}
			envModel := sim.NewPasserbyEnv(walls, 0.25, 1.8, src)
			sc := sim.Scenario{
				Beacons:      []sim.BeaconSpec{{Name: "b", X: 7, Y: 2.5}},
				ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
				EnvModel:     envModel,
				Seed:         seed,
			}
			tr, err := sim.Run(sc)
			if err != nil {
				return nil, err
			}
			m, err := eng.Locate(tr, "b")
			if err != nil {
				continue
			}
			errs = append(errs, m.Error(7, 2.5))
		}
		if len(errs) == 0 {
			return nil, fmt.Errorf("experiments: fig5 variant %q produced no estimates", v.name)
		}
		fig.Series = append(fig.Series, CDFSeries(v.name, errs))
	}
	fig.Notes = append(fig.Notes,
		"expect: removing ANF costs >1.5 m, removing EnvAware >1 m median error (paper Fig. 5)")
	return fig, nil
}

// EnvAwareClassification reproduces the Sec. 4.1 classifier study:
// precision/recall of the 3-class environment classifier for the linear
// SVM and the alternatives the paper tried.
func EnvAwareClassification(opt Options) (*Table, error) {
	cfg := env.DefaultDatasetConfig()
	cfg.Seed = opt.Seed + 99
	if opt.Quick {
		cfg.TracesPerEnv = 20
	}
	d, _, _, err := env.BuildDataset(cfg)
	if err != nil {
		return nil, err
	}
	src := rng.New(opt.Seed + 1)
	train, test := d.Split(0.3, src)

	table := &Table{
		ID:      "sec4.1",
		Title:   "EnvAware 3-class environment classification (held out)",
		Columns: []string{"classifier", "accuracy", "macro precision", "macro recall"},
	}
	models := []struct {
		name string
		fit  func(ml.Dataset) (ml.Classifier, error)
	}{
		{"linear SVM", func(d ml.Dataset) (ml.Classifier, error) { return ml.TrainLinearSVM(d, ml.DefaultSVMConfig()) }},
		{"decision tree", func(d ml.Dataset) (ml.Classifier, error) { return ml.TrainDecisionTree(d, ml.DefaultTreeConfig()) }},
		{"random forest", func(d ml.Dataset) (ml.Classifier, error) { return ml.TrainRandomForest(d, ml.DefaultForestConfig()) }},
	}
	for _, mspec := range models {
		std, err := ml.FitStandardizer(train.X)
		if err != nil {
			return nil, err
		}
		model, err := mspec.fit(ml.Dataset{X: std.ApplyAll(train.X), Y: train.Y})
		if err != nil {
			return nil, err
		}
		cm := ml.NewConfusionMatrix(3)
		for i, x := range test.X {
			cm.Add(test.Y[i], model.Predict(std.Apply(x)))
		}
		table.AddRow(mspec.name,
			fmt.Sprintf("%.3f", cm.Accuracy()),
			fmt.Sprintf("%.3f", cm.MacroPrecision()),
			fmt.Sprintf("%.3f", cm.MacroRecall()))
	}
	table.Notes = append(table.Notes,
		"paper: 94.7 % precision / 94.5 % recall with the linear SVM on their hand-collected traces")
	return table, nil
}
