package experiments

import (
	"fmt"
	"time"

	"locble/internal/baseline"
	"locble/internal/rf"
	"locble/internal/sim"
)

// Overhead reproduces the Sec. 7.8 system-overhead study as a CPU-cost
// comparison: the full LocBLE pipeline vs the Dartle-style ranging
// baseline processing the same trace. The paper instrumented energy on
// XCode (LocBLE +14 % CPU / +12 % energy vs Dartle's +11.3 % / +11 %);
// what transfers to the simulator is the *relative* cost.
func Overhead(opt Options) (*Table, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	sc := settingsScenario(opt.Seed+7, rf.DeviceProfile{}, rf.TxProfile{})
	tr, err := sim.Run(sc)
	if err != nil {
		return nil, err
	}
	reps := opt.trials(30, 5)

	t0 := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := eng.Locate(tr, "b"); err != nil {
			return nil, err
		}
	}
	locble := time.Since(t0) / time.Duration(reps)

	_, rss := tr.RSSSeries("b")
	t0 = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := baseline.EstimateRange(rss, rf.EstimoteBeacon.TxPowerDBm); err != nil {
			return nil, err
		}
	}
	ranging := time.Since(t0) / time.Duration(reps)

	table := &Table{
		ID:      "sec7.8",
		Title:   "Per-measurement CPU cost: LocBLE pipeline vs ranging baseline",
		Columns: []string{"system", "per measurement", "relative"},
	}
	table.AddRow("LocBLE (full pipeline)", locble.String(),
		fmt.Sprintf("%.1fx baseline", float64(locble)/float64(ranging)))
	table.AddRow("Dartle-style ranging", ranging.String(), "1.0x")
	table.Notes = append(table.Notes,
		"paper: LocBLE +14 % CPU vs ranging app's +11.3 % on an iPhone; both lightweight",
		"absolute costs are host-dependent; see the Benchmark* targets for steady-state numbers")
	return table, nil
}
