package experiments

import (
	"fmt"
	"io"
)

// Renderable is anything the harness can print.
type Renderable interface {
	Render(w io.Writer)
}

// Entry is one registered experiment.
type Entry struct {
	ID    string
	Title string
	Run   func(Options) (Renderable, error)
}

// wrapT adapts a Table generator.
func wrapT(f func(Options) (*Table, error)) func(Options) (Renderable, error) {
	return func(o Options) (Renderable, error) { return f(o) }
}

// wrapF adapts a Figure generator.
func wrapF(f func(Options) (*Figure, error)) func(Options) (Renderable, error) {
	return func(o Options) (Renderable, error) { return f(o) }
}

// All returns every experiment in paper order.
func All() []Entry {
	return []Entry{
		{"fig2", "RSS vs distance on three phones", wrapF(Fig2RSSVsDistance)},
		{"fig4", "BF + AKF filtering", wrapF(Fig4Filtering)},
		{"fig5", "Preprocessing ablation CDFs", wrapF(Fig5Preprocessing)},
		{"sec4.1", "EnvAware classification", wrapT(EnvAwareClassification)},
		{"fig8", "Step and turn detection", wrapT(Fig8StepTurn)},
		{"fig9", "DTW clustering and LB speedup", wrapT(Fig9DTW)},
		{"table1", "Per-environment accuracy", wrapT(Table1Environments)},
		{"fig10b", "Navigation overall error", wrapF(Fig10bNavigation)},
		{"fig11a", "Stationary target vs Dartle", wrapT(Fig11aStationary)},
		{"fig11b", "Moving target CDFs", wrapF(Fig11bMovingTarget)},
		{"fig12a", "Error vs target distance", wrapF(Fig12aDistanceSweep)},
		{"fig12b", "Navigation approach", wrapF(Fig12bNavigationApproach)},
		{"fig13a", "Sampling-rate sweep", wrapF(Fig13aSamplingRate)},
		{"fig13b", "Walk-length sweep", wrapF(Fig13bWalkLength)},
		{"fig14", "Beacon hardware types", wrapT(Fig14BeaconTypes)},
		{"fig15", "Clustering calibration", wrapF(Fig15Clustering)},
		{"sec7.8", "System overhead", wrapT(Overhead)},
		{"ablation-bf-order", "Butterworth order", wrapT(AblationButterworthOrder)},
		{"ablation-lshape", "L-shape vs straight walk", wrapT(AblationLShape)},
		{"ablation-restart", "EnvAware restart policy", wrapT(AblationRestartPolicy)},
		{"ablation-dtw-segment", "DTW segment length", wrapT(AblationDTWSegment)},
		{"ablation-akf-gain", "AKF max raw weight", wrapT(AblationAKFGain)},
		{"ext-tracking", "Continuous tracking", wrapT(ExtTracking)},
		{"ext-3d", "3-D localization", wrapT(Ext3D)},
		{"ext-proximity", "Last-metre proximity fusion", wrapT(ExtProximity)},
		{"ext-crowded", "Dense deployments", wrapT(ExtCrowded)},
		{"ext-ble5", "Bluetooth 5 Coded PHY", wrapT(ExtBLE5)},
		{"ext-tracking-moving", "Trajectory tracking of a walking phone", wrapT(ExtTrackingMoving)},
	}
}

// ByID finds a registered experiment.
func ByID(id string) (Entry, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
