// Package durable is the crash-safe, file-backed checkpoint store
// behind fleet serving: a CRC32C-framed write-ahead log per shard plus
// periodic atomic snapshots, group-commit fsync batching, and a
// recovery path that replays snapshot+WAL, truncates torn tails and
// quarantines (counts and sidelines, never silently drops) records
// whose checksum fails. Every byte of I/O goes through the small FS
// interface below, so internal/faults can wrap the store in disk-fault
// injectors — short writes, fsync errors, bit rot, rename failures,
// ENOSPC — and crash-matrix tests can kill it at every write boundary.
package durable

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the store's whole view of the filesystem: one flat directory
// of named files. The operation set is deliberately minimal — append,
// create-truncate, whole-file read, rename, remove, truncate, and the
// two fsync flavors — because a small surface is what makes exhaustive
// fault injection tractable.
type FS interface {
	// OpenAppend opens name for appending, creating it empty if absent.
	OpenAppend(name string) (File, error)
	// Create opens name truncated to zero length.
	Create(name string) (File, error)
	// ReadFile returns the full contents of name (fs.ErrNotExist when
	// the file is absent).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname's file. The
	// rename is durable only after SyncDir.
	Rename(oldname, newname string) error
	// Remove deletes name (absent is not an error).
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making completed renames,
	// creations and removals durable.
	SyncDir() error
	// List returns the names of all files, sorted.
	List() ([]string, error)
}

// File is an open handle. Writes are sequential (the store only ever
// appends or writes a fresh file front to back); Sync is fsync.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// DirFS is the production FS: one OS directory.
type DirFS struct {
	root string
}

// NewDirFS roots an FS at dir, creating it (and parents) if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirFS{root: dir}, nil
}

func (d *DirFS) path(name string) string { return filepath.Join(d.root, name) }

// OpenAppend implements FS.
func (d *DirFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(d.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Create implements FS.
func (d *DirFS) Create(name string) (File, error) {
	return os.OpenFile(d.path(name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

// ReadFile implements FS.
func (d *DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(d.path(name))
}

// Rename implements FS.
func (d *DirFS) Rename(oldname, newname string) error {
	return os.Rename(d.path(oldname), d.path(newname))
}

// Remove implements FS.
func (d *DirFS) Remove(name string) error {
	err := os.Remove(d.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// Truncate implements FS.
func (d *DirFS) Truncate(name string, size int64) error {
	return os.Truncate(d.path(name), size)
}

// SyncDir implements FS.
func (d *DirFS) SyncDir() error {
	f, err := os.Open(d.root)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// List implements FS.
func (d *DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.root)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// ErrDiskDead is what MemFS returns from every operation past its
// configured crash boundary — the disk has been yanked.
var ErrDiskDead = errors.New("durable: simulated disk failure")

// MemFS is the crash-simulating in-memory FS behind the crash-matrix
// and fuzz tests. It models the two-level durability real disks have:
// a file's content is durable only up to its last successful Sync, and
// a namespace change (create, rename, remove) is durable only after a
// successful SyncDir. CrashImage materializes "what the disk holds
// after a power cut" — everything else is lost.
type MemFS struct {
	mu    sync.Mutex
	nodes map[string]*memNode // live namespace: name -> inode
	dir   map[string]*memNode // durable namespace, committed by SyncDir

	// ops counts mutating operations; once it exceeds failAfter (when
	// failAfter >= 0) every subsequent operation fails with ErrDiskDead
	// without applying — the disk died mid-workload.
	ops       int64
	failAfter int64
}

type memNode struct {
	data    []byte // volatile content (page cache)
	durable []byte // content as of the last successful Sync
}

// NewMemFS returns an empty in-memory filesystem that never fails.
func NewMemFS() *MemFS {
	return &MemFS{
		nodes:     make(map[string]*memNode),
		dir:       make(map[string]*memNode),
		failAfter: -1,
	}
}

// FailAfter arms the crash boundary: the next n mutating operations
// succeed, then the disk dies (every later operation, reads included,
// returns ErrDiskDead without applying).
func (m *MemFS) FailAfter(n int64) {
	m.mu.Lock()
	m.ops = 0
	m.failAfter = n
	m.mu.Unlock()
}

// Ops returns how many mutating operations have been applied — run the
// workload once against an unarmed MemFS to size the crash matrix.
func (m *MemFS) Ops() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// step accounts one mutating operation; the caller must hold mu.
func (m *MemFS) step() error {
	if m.failAfter >= 0 && m.ops >= m.failAfter {
		return ErrDiskDead
	}
	m.ops++
	return nil
}

func (m *MemFS) dead() error {
	if m.failAfter >= 0 && m.ops >= m.failAfter {
		return ErrDiskDead
	}
	return nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		if err := m.step(); err != nil {
			return nil, err
		}
		n = &memNode{}
		m.nodes[name] = n
	} else if err := m.dead(); err != nil {
		return nil, err
	}
	return &memFile{fs: m, node: n}, nil
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return nil, err
	}
	n := &memNode{}
	m.nodes[name] = n
	return &memFile{fs: m, node: n}, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.dead(); err != nil {
		return nil, err
	}
	n, ok := m.nodes[name]
	if !ok {
		return nil, fs.ErrNotExist
	}
	return append([]byte(nil), n.data...), nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	n, ok := m.nodes[oldname]
	if !ok {
		return fs.ErrNotExist
	}
	delete(m.nodes, oldname)
	m.nodes[newname] = n
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	delete(m.nodes, name)
	return nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	n, ok := m.nodes[name]
	if !ok {
		return fs.ErrNotExist
	}
	if size < 0 || size > int64(len(n.data)) {
		return errors.New("durable: memfs truncate out of range")
	}
	n.data = n.data[:size:size]
	if int64(len(n.durable)) > size {
		n.durable = n.durable[:size:size]
	}
	return nil
}

// SyncDir implements FS: the live namespace becomes the durable one.
func (m *MemFS) SyncDir() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	m.dir = make(map[string]*memNode, len(m.nodes))
	for name, n := range m.nodes {
		m.dir[name] = n
	}
	return nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.dead(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(m.nodes))
	for name := range m.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// SetFile installs content as a fully durable file — the fuzz target
// uses it to plant an arbitrary WAL image before opening the store.
func (m *MemFS) SetFile(name string, content []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := &memNode{
		data:    append([]byte(nil), content...),
		durable: append([]byte(nil), content...),
	}
	m.nodes[name] = n
	m.dir[name] = n
}

// CrashImage returns a fresh MemFS holding what the disk would hold
// after a power cut right now: only durably-linked names survive, each
// with its last-synced content. lossyTail — a function mapping the
// number of unsynced appended bytes to how many of them leaked to disk
// anyway — models write-back caches flushing part of an un-fsynced
// append before the cut, which is exactly how torn tail records are
// born. Pass nil for a strict crash (unsynced bytes all lost).
func (m *MemFS) CrashImage(lossyTail func(unsynced int) int) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	img := NewMemFS()
	for name, n := range m.dir {
		content := append([]byte(nil), n.durable...)
		// An appended-but-unsynced suffix may partially survive.
		if lossyTail != nil && len(n.data) > len(n.durable) &&
			strings.HasPrefix(string(n.data), string(n.durable)) {
			extra := lossyTail(len(n.data) - len(n.durable))
			if extra > len(n.data)-len(n.durable) {
				extra = len(n.data) - len(n.durable)
			}
			if extra > 0 {
				content = append(content, n.data[len(n.durable):len(n.durable)+extra]...)
			}
		}
		img.SetFile(name, content)
	}
	return img
}

// FlipBit flips one bit of a file's durable content in place — bit rot
// on the platter. Reports whether the file exists and is non-empty.
func (m *MemFS) FlipBit(name string, bitOffset int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok || len(n.data) == 0 {
		return false
	}
	i := (bitOffset / 8) % len(n.data)
	n.data[i] ^= 1 << (bitOffset % 8)
	if i < len(n.durable) {
		n.durable[i] = n.data[i]
	}
	return true
}

// memFile is a MemFS handle. Writes append (the store's only write
// pattern on a kept-open handle is the WAL append; snapshot files are
// written front to back on a fresh node, which is the same thing).
type memFile struct {
	fs     *MemFS
	node   *memNode
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if err := f.fs.step(); err != nil {
		return 0, err
	}
	f.node.data = append(f.node.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if err := f.fs.step(); err != nil {
		return err
	}
	f.node.durable = append(f.node.durable[:0:0], f.node.data...)
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
