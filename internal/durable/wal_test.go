package durable

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var b []byte
	b = appendRecord(b, opSave, "beacon-1", []byte(`{"v":1}`))
	b = appendRecord(b, opDelete, "beacon-2", nil)
	b = appendRecord(b, opSave, "beacon-1", []byte(`{"v":2}`))

	type rec struct {
		op   byte
		name string
		val  string
	}
	var got []rec
	st := walScan(b, 0, func(op byte, name string, val []byte) {
		got = append(got, rec{op, name, string(val)})
	}, nil)
	if st.damaged() {
		t.Fatalf("clean log reported damage: %+v", st)
	}
	if st.records != 3 || st.cleanLen != int64(len(b)) {
		t.Fatalf("records=%d cleanLen=%d, want 3, %d", st.records, st.cleanLen, len(b))
	}
	want := []rec{
		{opSave, "beacon-1", `{"v":1}`},
		{opDelete, "beacon-2", ""},
		{opSave, "beacon-1", `{"v":2}`},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDecodePayloadRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":             {},
		"one byte":          {opSave},
		"bad op":            {0x07, 1, 'x'},
		"name overrun":      {opSave, 200, 'x'},
		"zero name":         {opSave, 0},
		"delete with value": {opDelete, 1, 'x', 'v'},
	}
	for name, p := range cases {
		if _, _, _, ok := decodePayload(p); ok {
			t.Errorf("%s: decodePayload accepted %v", name, p)
		}
	}
}

func TestWalScanTornTail(t *testing.T) {
	var b []byte
	b = appendRecord(b, opSave, "a", []byte("11"))
	b = appendRecord(b, opSave, "b", []byte("22"))
	clean := len(b)
	full := appendRecord(b, opSave, "c", []byte("3333"))
	torn := full[:len(full)-3] // crash mid-append

	var tornRegions [][]byte
	st := walScan(torn, 0, nil, func(region []byte, isTorn bool) {
		if !isTorn {
			t.Fatalf("tail misclassified as mid-file damage")
		}
		tornRegions = append(tornRegions, region)
	})
	if st.records != 2 || st.tornTail != 1 {
		t.Fatalf("records=%d tornTail=%d, want 2, 1", st.records, st.tornTail)
	}
	if st.quarRegions != 0 {
		t.Fatalf("quarRegions=%d, want 0", st.quarRegions)
	}
	if st.cleanLen != int64(clean) {
		t.Fatalf("cleanLen=%d, want %d (truncate point)", st.cleanLen, clean)
	}
	if len(tornRegions) != 1 || !bytes.Equal(tornRegions[0], torn[clean:]) {
		t.Fatalf("sidelined wrong region")
	}
}

func TestWalScanBitRotResync(t *testing.T) {
	var b []byte
	b = appendRecord(b, opSave, "a", []byte("1111"))
	mid := len(b)
	b = appendRecord(b, opSave, "b", []byte("2222"))
	b = appendRecord(b, opSave, "c", []byte("3333"))

	// Rot a payload byte of the middle record: its CRC now fails.
	b[mid+frameHeaderLen+2] ^= 0x40

	var names []string
	st := walScan(b, 0, func(op byte, name string, val []byte) {
		names = append(names, name)
	}, nil)
	if st.records != 2 || st.quarRegions != 1 || st.tornTail != 0 {
		t.Fatalf("records=%d quar=%d torn=%d, want 2, 1, 0", st.records, st.quarRegions, st.tornTail)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "c" {
		t.Fatalf("replayed %v, want [a c] (resync past the rotted record)", names)
	}
	// cleanLen freezes at the first damaged byte even though replay
	// resynchronized later — truncate repair must not eat record c.
	if st.cleanLen != int64(mid) {
		t.Fatalf("cleanLen=%d, want %d", st.cleanLen, mid)
	}
}

func TestWalScanImplausibleLength(t *testing.T) {
	var b []byte
	b = appendRecord(b, opSave, "a", []byte("1"))
	// A frame header claiming a payload far past maxRecord.
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	b = append(b, hdr[:]...)
	b = append(b, "trailing garbage"...)

	st := walScan(b, 1<<20, nil, nil)
	if st.records != 1 || st.tornTail != 1 {
		t.Fatalf("records=%d tornTail=%d, want 1, 1", st.records, st.tornTail)
	}
}

func TestWalScanEmptyAndGarbage(t *testing.T) {
	if st := walScan(nil, 0, nil, nil); st.damaged() || st.records != 0 {
		t.Fatalf("empty log: %+v", st)
	}
	st := walScan([]byte("not a wal at all"), 0, nil, nil)
	if st.records != 0 || st.tornTail != 1 {
		t.Fatalf("pure garbage: %+v, want one torn region", st)
	}
}
