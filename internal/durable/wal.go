package durable

import (
	"encoding/binary"
	"hash/crc32"
)

// WAL format. Both the per-shard log and the snapshot files are a flat
// sequence of frames:
//
//	+----------------+----------------+===================+
//	| length  u32 LE | CRC32C  u32 LE | payload (length B)|
//	+----------------+----------------+===================+
//
// with the checksum taken over the payload alone (Castagnoli
// polynomial — the iSCSI/ext4 one, with hardware support on every
// modern CPU). The payload is one record:
//
//	+----+-------------------+-----------+=================+
//	| op | name len (uvarint)| name bytes| value bytes ... |
//	+----+-------------------+-----------+=================+
//
// op 0x01 is an upsert (value = the checkpoint JSON), op 0x02 a
// delete (no value). The framing carries no sequence numbers and no
// file-level header: recovery is a pure left-to-right replay where the
// last record for a name wins, which is what makes "replay snapshot
// then the whole WAL" idempotent and lets compaction truncate the log
// without any offset bookkeeping surviving a crash mid-rotation.

const (
	opSave   byte = 0x01
	opDelete byte = 0x02

	frameHeaderLen = 8

	// defaultMaxRecord bounds one frame's payload — anything claiming
	// to be bigger is treated as log damage, not a record.
	defaultMaxRecord = 8 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends one framed record to dst and returns it.
func appendRecord(dst []byte, op byte, name string, val []byte) []byte {
	plen := 1 + binary.MaxVarintLen32 + len(name) + len(val)
	need := frameHeaderLen + plen
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	dst = append(dst, op)
	var nl [binary.MaxVarintLen32]byte
	dst = append(dst, nl[:binary.PutUvarint(nl[:], uint64(len(name)))]...)
	dst = append(dst, name...)
	dst = append(dst, val...)
	payload := dst[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// decodePayload splits a checksum-valid payload into its record parts.
// A malformed payload (impossible op, name length overrunning the
// record) reports ok=false — the caller quarantines it; a record is
// never half-accepted.
func decodePayload(p []byte) (op byte, name string, val []byte, ok bool) {
	if len(p) < 2 {
		return 0, "", nil, false
	}
	op = p[0]
	if op != opSave && op != opDelete {
		return 0, "", nil, false
	}
	nlen, n := binary.Uvarint(p[1:])
	if n <= 0 || nlen == 0 || nlen > uint64(len(p)-1-n) {
		return 0, "", nil, false
	}
	body := p[1+n:]
	name = string(body[:nlen])
	val = body[nlen:]
	if op == opDelete && len(val) != 0 {
		return 0, "", nil, false
	}
	return op, name, val, true
}

// scanStats is one file's replay outcome.
type scanStats struct {
	// records that decoded cleanly and were applied.
	records int64
	// quarRegions / quarBytes: checksum-failed (or undecodable) byte
	// regions mid-log that were sidelined; replay resynchronized on a
	// later valid frame after each.
	quarRegions int64
	quarBytes   int64
	// tornTail / tornBytes: a trailing region with no valid frame after
	// it — the classic torn write of a crash mid-append. Truncated.
	tornTail  int64
	tornBytes int64
	// cleanLen is the byte length of the leading fully-clean prefix:
	// when quarRegions == 0 the file can be repaired by a plain
	// truncate to cleanLen; otherwise it needs a rewrite.
	cleanLen int64
}

func (s *scanStats) damaged() bool { return s.quarRegions > 0 || s.tornTail > 0 }

// walScan replays one WAL or snapshot image left to right. Every
// record whose checksum and structure verify is passed to apply, in
// order. Damaged regions are passed to sideline (torn marks the
// trailing region no valid frame follows) — never silently skipped.
//
// Recovery policy: a frame whose stated length is implausible, or
// whose checksum fails, starts a damaged region; the scanner then
// hunts forward for the next position that parses as a fully valid
// frame (length plausible, checksum matching, payload decodable) and
// resumes there. With a 32-bit checksum plus structural validation, a
// false resync inside rotted bytes is a ~2^-32 coincidence — and even
// then the "record" accepted verified its checksum, so the store never
// accepts corrupt-but-plausible data, which is the invariant that
// matters.
func walScan(b []byte, maxRecord int, apply func(op byte, name string, val []byte), sideline func(region []byte, torn bool)) scanStats {
	if maxRecord <= 0 {
		maxRecord = defaultMaxRecord
	}
	var st scanStats
	pos := 0
	quarFrom := -1     // start of the damaged region being skipped, -1 when clean
	hitDamage := false // cleanLen freezes at the first damaged byte

	flushQuar := func(upto int) {
		if quarFrom < 0 {
			return
		}
		st.quarRegions++
		st.quarBytes += int64(upto - quarFrom)
		if sideline != nil {
			sideline(b[quarFrom:upto], false)
		}
		quarFrom = -1
	}

	for pos < len(b) {
		if start, op, name, val, next := frameAt(b, pos, maxRecord); start {
			flushQuar(pos)
			st.records++
			if apply != nil {
				apply(op, name, val)
			}
			pos = next
			if !hitDamage {
				st.cleanLen = int64(pos)
			}
			continue
		}
		// Damage. Open (or continue) a quarantine region and hunt for
		// the next valid frame.
		if quarFrom < 0 {
			quarFrom = pos
			hitDamage = true
		}
		pos++
	}
	if quarFrom >= 0 {
		// Trailing damage with no valid frame after it: a torn tail.
		st.tornTail++
		st.tornBytes += int64(len(b) - quarFrom)
		if sideline != nil {
			sideline(b[quarFrom:], true)
		}
	}
	return st
}

// frameAt reports whether a fully valid frame begins at pos, and if so
// decodes it and returns the offset just past it.
func frameAt(b []byte, pos, maxRecord int) (ok bool, op byte, name string, val []byte, next int) {
	if len(b)-pos < frameHeaderLen {
		return false, 0, "", nil, 0
	}
	plen := int(binary.LittleEndian.Uint32(b[pos:]))
	if plen < 2 || plen > maxRecord || plen > len(b)-pos-frameHeaderLen {
		return false, 0, "", nil, 0
	}
	payload := b[pos+frameHeaderLen : pos+frameHeaderLen+plen]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[pos+4:]) {
		return false, 0, "", nil, 0
	}
	op, name, val, ok = decodePayload(payload)
	if !ok {
		return false, 0, "", nil, 0
	}
	return true, op, name, val, pos + frameHeaderLen + plen
}
