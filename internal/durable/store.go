package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"sync"

	"locble/internal/core"
)

// Options configures a FileStore. The zero value (pass nil to Open) is
// the production configuration.
type Options struct {
	// Shards is how many independent WAL shards to spread beacons over
	// (FNV-1a on the beacon name, like the fleet's session shards). More
	// shards mean more group-commit lanes. Zero selects 4. The count is
	// fixed at store creation; reopening an existing directory uses the
	// persisted count and ignores this field.
	Shards int
	// SnapshotEvery is how many WAL records a shard accumulates before
	// rotating a snapshot and compacting the log. Zero selects 512.
	SnapshotEvery int
	// Buffered drops the per-Save fsync: appends land in the OS page
	// cache and become durable at the next snapshot rotation, Sync, or
	// clean Close. Saves are acknowledged as buffered, not durable —
	// Durable() reports false so the fleet accounts them honestly.
	Buffered bool
	// MaxRecordBytes bounds one record's payload; recovery treats
	// anything claiming to be larger as damage. Zero selects 8 MiB.
	MaxRecordBytes int
	// FS overrides the filesystem (tests inject MemFS or fault
	// wrappers). Nil selects the real directory at the Open path.
	FS FS
}

func (o *Options) withDefaults() Options {
	var opt Options
	if o != nil {
		opt = *o
	}
	if opt.Shards <= 0 {
		opt.Shards = 4
	}
	if opt.SnapshotEvery <= 0 {
		opt.SnapshotEvery = 512
	}
	if opt.MaxRecordBytes <= 0 {
		opt.MaxRecordBytes = defaultMaxRecord
	}
	return opt
}

// RecoveryStats is what Open found and repaired while replaying the
// store — the "how bad was the crash" report. All damage is counted and
// sidelined (per shard, into shard-NN.quar), never silently dropped.
type RecoveryStats struct {
	// Replayed counts records applied from snapshots and WALs.
	Replayed int64 `json:"replayed"`
	// TornTails counts trailing WAL regions with no valid frame — the
	// classic crash-mid-append tear, truncated away. TornBytes is their
	// total size.
	TornTails int64 `json:"torn_tails"`
	TornBytes int64 `json:"torn_bytes"`
	// Quarantined counts damaged mid-file regions (bad checksum or
	// undecodable structure) that replay skipped after resynchronizing
	// on a later valid frame. QuarantinedBytes is their total size.
	Quarantined      int64 `json:"quarantined"`
	QuarantinedBytes int64 `json:"quarantined_bytes"`
	// RepairedShards counts shards whose on-disk files were rewritten
	// (snapshot rotation) or truncated to repair damage at open.
	RepairedShards int64 `json:"repaired_shards"`
}

func (r *RecoveryStats) add(s scanStats) {
	r.Replayed += s.records
	r.TornTails += s.tornTail
	r.TornBytes += s.tornBytes
	r.Quarantined += s.quarRegions
	r.QuarantinedBytes += s.quarBytes
}

// ErrStoreClosed is returned by operations on a closed store.
var ErrStoreClosed = errors.New("durable: store is closed")

// metaName persists the shard count; the layout must survive reopening
// with different Options.
const metaName = "META"

type metaFile struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// FileStore is the crash-safe checkpoint store: fleet.CheckpointStore
// backed by per-shard write-ahead logs with periodic snapshot
// compaction. All state is also held in memory (checkpoints are small
// — the files exist to survive restarts, not to exceed RAM), so Load
// never touches the disk.
type FileStore struct {
	fs     FS
	opt    Options
	shards []*walShard
	rec    RecoveryStats
}

// Open opens (creating if needed) the store rooted at dir, replaying
// and repairing any existing state. A torn WAL tail is truncated;
// checksum-failed regions are quarantined into shard-NN.quar and
// skipped; both are counted in RecoveryStats. Open fails only when the
// filesystem itself does — damage in the data is repaired, not fatal.
func Open(dir string, opt *Options) (*FileStore, error) {
	o := opt.withDefaults()
	if o.FS == nil {
		dfs, err := NewDirFS(dir)
		if err != nil {
			return nil, fmt.Errorf("durable: open %s: %w", dir, err)
		}
		o.FS = dfs
	}
	st := &FileStore{fs: o.FS, opt: o}
	if err := st.loadMeta(); err != nil {
		return nil, err
	}
	st.shards = make([]*walShard, st.opt.Shards)
	for i := range st.shards {
		sh, err := st.openShard(i)
		if err != nil {
			return nil, err
		}
		st.shards[i] = sh
	}
	// One directory sync makes the whole namespace — META, every shard
	// WAL — durable before the first Save can be acknowledged. Without
	// it a freshly created store could fsync WAL content into files a
	// power cut then unlinks.
	if err := st.fs.SyncDir(); err != nil {
		return nil, fmt.Errorf("durable: sync dir: %w", err)
	}
	return st, nil
}

// loadMeta reads or creates the META file and pins the shard count. A
// corrupt or missing META with shard files on disk derives the count
// from the files themselves — data placement beats configuration.
func (st *FileStore) loadMeta() error {
	raw, err := st.fs.ReadFile(metaName)
	if err == nil {
		var m metaFile
		if jerr := json.Unmarshal(raw, &m); jerr == nil && m.Shards > 0 {
			st.opt.Shards = m.Shards
			return nil
		}
		// Fall through: META unreadable (e.g. a crash mid-creation).
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("durable: read %s: %w", metaName, err)
	}
	if n := st.shardCountFromFiles(); n > 0 {
		st.opt.Shards = n
	}
	return st.writeMeta()
}

// shardCountFromFiles infers the shard count from existing shard files
// (highest index + 1), for recovery from a damaged META.
func (st *FileStore) shardCountFromFiles() int {
	names, err := st.fs.List()
	if err != nil {
		return 0
	}
	max := -1
	for _, name := range names {
		var id int
		var kind string
		if _, err := fmt.Sscanf(name, "shard-%02d.%s", &id, &kind); err == nil && id > max {
			max = id
		}
	}
	return max + 1
}

func (st *FileStore) writeMeta() error {
	raw, _ := json.Marshal(metaFile{Version: 1, Shards: st.opt.Shards})
	tmp := metaName + ".tmp"
	f, err := st.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: create %s: %w", tmp, err)
	}
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		return fmt.Errorf("durable: write %s: %w", tmp, err)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("durable: write %s: %w", tmp, err)
	}
	if err := st.fs.Rename(tmp, metaName); err != nil {
		return fmt.Errorf("durable: install %s: %w", metaName, err)
	}
	return nil
}

// shardIndex is FNV-1a over the beacon name — the same spread the
// fleet uses for its session shards.
func (st *FileStore) shardIndex(beacon string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(beacon); i++ {
		h ^= uint32(beacon[i])
		h *= prime32
	}
	return int(h % uint32(len(st.shards)))
}

// Save implements fleet.CheckpointStore. When the store is in durable
// (non-Buffered) mode, a nil return means the checkpoint has been
// fsynced — it survives an immediate power cut.
func (st *FileStore) Save(beacon string, cp *core.SessionCheckpoint) error {
	raw, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("durable: encode checkpoint %s: %w", beacon, err)
	}
	return st.shards[st.shardIndex(beacon)].save(beacon, raw, !st.opt.Buffered)
}

// Load implements fleet.CheckpointStore. It serves from the in-memory
// image (every byte of which arrived CRC-verified or was written by
// this process); a decode failure is reported as ErrCorruptCheckpoint
// so the fleet quarantines the beacon instead of wedging it.
func (st *FileStore) Load(beacon string) (*core.SessionCheckpoint, bool, error) {
	raw, ok := st.shards[st.shardIndex(beacon)].load(beacon)
	if !ok {
		return nil, false, nil
	}
	var cp core.SessionCheckpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return nil, false, fmt.Errorf("durable: decode checkpoint %s: %w (%w)",
			beacon, core.ErrCorruptCheckpoint, err)
	}
	return &cp, true, nil
}

// Delete implements fleet.CheckpointStore: appends a tombstone record.
// Deleting an absent beacon is a no-op.
func (st *FileStore) Delete(beacon string) error {
	return st.shards[st.shardIndex(beacon)].delete(beacon, !st.opt.Buffered)
}

// Sync forces every shard durable — the Buffered mode's explicit
// durability point.
func (st *FileStore) Sync() error {
	var first error
	for _, sh := range st.shards {
		if err := sh.syncAll(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close syncs every shard (a clean Close makes Buffered saves durable)
// and releases file handles. Operations after Close fail.
func (st *FileStore) Close() error {
	var first error
	for _, sh := range st.shards {
		if err := sh.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Len returns how many checkpoints the store holds.
func (st *FileStore) Len() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		n += len(sh.mem)
		sh.mu.Unlock()
	}
	return n
}

// Beacons returns the stored beacon names, sorted.
func (st *FileStore) Beacons() []string {
	var names []string
	for _, sh := range st.shards {
		sh.mu.Lock()
		for name := range sh.mem {
			names = append(names, name)
		}
		sh.mu.Unlock()
	}
	sort.Strings(names)
	return names
}

// RecoveryStats reports what Open replayed and repaired.
func (st *FileStore) RecoveryStats() RecoveryStats { return st.rec }

// Durable reports whether a nil Save means fsynced-to-disk (false in
// Buffered mode). This plus RecoveryCounts satisfies the fleet's
// optional DurableStore interface.
func (st *FileStore) Durable() bool { return !st.opt.Buffered }

// RecoveryCounts reports (records replayed, torn tails truncated,
// regions quarantined) from the last Open.
func (st *FileStore) RecoveryCounts() (replayed, truncated, quarantined int64) {
	return st.rec.Replayed, st.rec.TornTails, st.rec.Quarantined
}

// walShard is one WAL + snapshot pair and its in-memory image.
//
// Locking: mu guards the image, the append handle and the on-disk
// byte accounting; cmu+cond run the group-commit protocol. A committer
// holds cmu only between fsyncs — the fsync itself runs with neither
// lock held (reading the watermark under mu first), so appends from
// other writers proceed while a batch is being flushed and the next
// fsync covers them all. The only both-locks path is rotation
// (mu → cmu), so the order is acyclic.
type walShard struct {
	st *FileStore
	id int

	walName, snapName, tmpName, quarName string

	mu      sync.Mutex
	mem     map[string][]byte // beacon -> checkpoint JSON, mirrors disk
	w       File              // WAL append handle (never nil until closed)
	walLen  int64             // bytes known good in the WAL
	recs    int               // WAL records since the last snapshot
	seq     int64             // appends ever; the group-commit clock
	scratch []byte            // frame-encoding buffer, reused under mu
	broken  error             // non-nil: durability lost (failed fsync / unrepairable tear); healed only by a successful rotation
	closed  bool

	cmu     sync.Mutex
	cond    *sync.Cond
	synced  int64 // appends covered by a successful fsync or snapshot
	syncing bool  // one fsync in flight; followers wait on cond
}

func (st *FileStore) openShard(id int) (*walShard, error) {
	sh := &walShard{
		st:       st,
		id:       id,
		walName:  fmt.Sprintf("shard-%02d.wal", id),
		snapName: fmt.Sprintf("shard-%02d.snap", id),
		tmpName:  fmt.Sprintf("shard-%02d.tmp", id),
		quarName: fmt.Sprintf("shard-%02d.quar", id),
		mem:      make(map[string][]byte),
	}
	sh.cond = sync.NewCond(&sh.cmu)
	// A leftover .tmp is an interrupted snapshot that never got renamed
	// into place — dead weight, remove it.
	if err := st.fs.Remove(sh.tmpName); err != nil {
		return nil, fmt.Errorf("durable: clear %s: %w", sh.tmpName, err)
	}
	apply := func(op byte, name string, val []byte) {
		if op == opDelete {
			delete(sh.mem, name)
			return
		}
		sh.mem[name] = append([]byte(nil), val...)
	}
	sideline := sh.sideliner()
	snapStats, err := sh.scanFile(sh.snapName, apply, sideline)
	if err != nil {
		return nil, err
	}
	walStats, err := sh.scanFile(sh.walName, apply, sideline)
	if err != nil {
		return nil, err
	}
	st.rec.add(snapStats)
	st.rec.add(walStats)
	sh.recs = int(walStats.records)
	sh.walLen = walStats.cleanLen

	switch {
	case snapStats.damaged() || walStats.quarRegions > 0:
		// Mid-file damage (bit rot) — rewrite both files from the
		// surviving image so the damage cannot be re-replayed.
		sh.mu.Lock()
		err := sh.rotateLocked()
		sh.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("durable: shard %d: rewrite damaged files: %w", id, err)
		}
		st.rec.RepairedShards++
	case walStats.tornTail > 0:
		// Clean prefix + torn tail — the crash-mid-append shape. A plain
		// truncate to the clean prefix repairs it.
		if err := st.fs.Truncate(sh.walName, walStats.cleanLen); err != nil {
			return nil, fmt.Errorf("durable: shard %d: truncate torn tail: %w", id, err)
		}
		st.rec.RepairedShards++
	}
	w, err := st.fs.OpenAppend(sh.walName)
	if err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", sh.walName, err)
	}
	sh.w = w
	return sh, nil
}

// scanFile replays one file (absent = empty).
func (sh *walShard) scanFile(name string, apply func(byte, string, []byte), sideline func([]byte, bool)) (scanStats, error) {
	b, err := sh.st.fs.ReadFile(name)
	if errors.Is(err, fs.ErrNotExist) {
		return scanStats{}, nil
	}
	if err != nil {
		return scanStats{}, fmt.Errorf("durable: read %s: %w", name, err)
	}
	return walScan(b, sh.st.opt.MaxRecordBytes, apply, sideline), nil
}

// sideliner appends damaged regions to the shard's quarantine file.
// Sidelining is best-effort — the bytes are already damaged and always
// counted; a quarantine-write failure must not block recovery.
func (sh *walShard) sideliner() func([]byte, bool) {
	return func(region []byte, torn bool) {
		f, err := sh.st.fs.OpenAppend(sh.quarName)
		if err != nil {
			return
		}
		f.Write(region)
		f.Close()
	}
}

func (sh *walShard) load(name string) ([]byte, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	raw, ok := sh.mem[name]
	return raw, ok
}

// save appends an upsert record; with sync set it blocks until a group
// commit covers it. A nil return with sync set means fsynced.
func (sh *walShard) save(name string, val []byte, sync bool) error {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return ErrStoreClosed
	}
	if sh.broken != nil {
		// Durability was lost (a failed fsync may have dropped dirty
		// pages — a later fsync of the same file proves nothing). The
		// only honest repair is a fresh snapshot of the full image, so
		// fold the record in and attempt exactly that.
		sh.mem[name] = val
		err := sh.rotateLocked()
		sh.mu.Unlock()
		return err
	}
	sh.scratch = appendRecord(sh.scratch[:0], opSave, name, val)
	if err := sh.appendLocked(); err != nil {
		sh.mu.Unlock()
		return err
	}
	sh.mem[name] = val
	return sh.finishAppend(sync)
}

// delete appends a tombstone. Absent beacons are a no-op (the image
// mirrors the log — nothing to tombstone).
func (sh *walShard) delete(name string, sync bool) error {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return ErrStoreClosed
	}
	if sh.broken != nil {
		// While broken, mem and disk can disagree (a failed rotation may
		// have applied the delete to mem only) — so even an
		// absent-in-mem delete must go through the snapshot rebuild
		// before it can be acknowledged.
		delete(sh.mem, name)
		err := sh.rotateLocked()
		sh.mu.Unlock()
		return err
	}
	if _, ok := sh.mem[name]; !ok {
		sh.mu.Unlock()
		return nil
	}
	sh.scratch = appendRecord(sh.scratch[:0], opDelete, name, nil)
	if err := sh.appendLocked(); err != nil {
		sh.mu.Unlock()
		return err
	}
	delete(sh.mem, name)
	return sh.finishAppend(sync)
}

// appendLocked writes sh.scratch to the WAL. On a short or failed
// write it repairs the tear by truncating back to the known-good
// length; if even that fails the shard is broken. Requires mu.
func (sh *walShard) appendLocked() error {
	n, err := sh.w.Write(sh.scratch)
	if err == nil && n != len(sh.scratch) {
		err = io.ErrShortWrite
	}
	if err == nil {
		sh.walLen += int64(len(sh.scratch))
		sh.recs++
		sh.seq++
		return nil
	}
	// The log now ends in a torn record. Cut it back off.
	if terr := sh.st.fs.Truncate(sh.walName, sh.walLen); terr != nil {
		sh.broken = fmt.Errorf("durable: shard %d: torn append unrepaired: %w", sh.id, terr)
	}
	return fmt.Errorf("durable: shard %d: append: %w", sh.id, err)
}

// finishAppend (entered with mu held, releases it) rotates a snapshot
// if the WAL is due and then, for sync saves, joins the group commit.
func (sh *walShard) finishAppend(sync bool) error {
	target := sh.seq
	if sh.recs >= sh.st.opt.SnapshotEvery {
		// Rotation failure is not this save's failure: the WAL record is
		// intact and the fsync below still covers it. recs stays high so
		// the next save retries the rotation.
		if err := sh.rotateLocked(); err == nil {
			sh.mu.Unlock()
			return nil // the snapshot itself made everything durable
		}
	}
	sh.mu.Unlock()
	if !sync {
		return nil
	}
	return sh.commit(target)
}

// commit blocks until a successful fsync (or snapshot) covers append
// number target. One committer fsyncs on behalf of everyone waiting —
// the group commit: followers arriving while a flush is in flight wait
// for it, then the first of them flushes the accumulated batch with a
// single fsync.
func (sh *walShard) commit(target int64) error {
	sh.cmu.Lock()
	defer sh.cmu.Unlock()
	for sh.synced < target {
		if sh.syncing {
			sh.cond.Wait()
			continue
		}
		sh.syncing = true
		sh.cmu.Unlock()

		// Snapshot the watermark before fsync: everything appended
		// before this point is covered by the flush that follows.
		sh.mu.Lock()
		upto := sh.seq
		err := sh.broken
		w := sh.w
		if err == nil && sh.closed {
			err = ErrStoreClosed
		}
		sh.mu.Unlock()
		if err == nil {
			if serr := w.Sync(); serr != nil {
				err = fmt.Errorf("durable: shard %d: fsync: %w", sh.id, serr)
				// A failed fsync may have dropped dirty pages on the
				// floor; retrying it can succeed while the data stays
				// lost. Poison the shard — only a fresh snapshot
				// rotation restores durability.
				sh.mu.Lock()
				if sh.broken == nil {
					sh.broken = err
				}
				sh.mu.Unlock()
			}
		}

		sh.cmu.Lock()
		sh.syncing = false
		if err == nil && upto > sh.synced {
			sh.synced = upto
		}
		sh.cond.Broadcast()
		if err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked writes a snapshot of the in-memory image (write tmp →
// fsync → rename → fsync dir) and only then truncates the WAL — the
// compaction step. Any failure leaves the previous snapshot+WAL pair
// intact and replayable. On success the shard is durable up to now, so
// the group-commit watermark advances and a broken shard heals.
// Requires mu.
func (sh *walShard) rotateLocked() error {
	f, err := sh.st.fs.Create(sh.tmpName)
	if err != nil {
		return fmt.Errorf("durable: shard %d: create snapshot: %w", sh.id, err)
	}
	// Deterministic record order keeps snapshot bytes reproducible.
	names := make([]string, 0, len(sh.mem))
	for name := range sh.mem {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := sh.scratch[:0]
	werr := func() error {
		for _, name := range names {
			buf = appendRecord(buf, opSave, name, sh.mem[name])
			if len(buf) >= 1<<16 {
				if _, err := f.Write(buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		if len(buf) > 0 {
			if _, err := f.Write(buf); err != nil {
				return err
			}
		}
		return f.Sync()
	}()
	sh.scratch = buf[:0]
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("durable: shard %d: write snapshot: %w", sh.id, werr)
	}
	if err := sh.st.fs.Rename(sh.tmpName, sh.snapName); err != nil {
		return fmt.Errorf("durable: shard %d: install snapshot: %w", sh.id, err)
	}
	// The rename must be durable before the WAL shrinks, or a crash
	// between the two leaves an old snapshot with a truncated log.
	if err := sh.st.fs.SyncDir(); err != nil {
		return fmt.Errorf("durable: shard %d: sync dir: %w", sh.id, err)
	}
	// An absent WAL (open-time repair before the log was ever created)
	// is already length zero.
	if err := sh.st.fs.Truncate(sh.walName, 0); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("durable: shard %d: compact wal: %w", sh.id, err)
	}
	sh.walLen = 0
	sh.recs = 0
	sh.broken = nil
	// Everything appended so far is covered by the snapshot; release
	// any committers waiting on the old WAL's fsync.
	target := sh.seq
	sh.cmu.Lock()
	if target > sh.synced {
		sh.synced = target
	}
	sh.cond.Broadcast()
	sh.cmu.Unlock()
	return nil
}

// syncAll makes the shard durable up to its current append.
func (sh *walShard) syncAll() error {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return ErrStoreClosed
	}
	if sh.broken != nil {
		err := sh.rotateLocked()
		sh.mu.Unlock()
		return err
	}
	target := sh.seq
	sh.mu.Unlock()
	return sh.commit(target)
}

// close final-syncs (making Buffered saves durable on a clean
// shutdown) and releases the WAL handle.
func (sh *walShard) close() error {
	err := sh.syncAll()
	if errors.Is(err, ErrStoreClosed) {
		return nil
	}
	sh.mu.Lock()
	sh.closed = true
	if sh.w != nil {
		if cerr := sh.w.Close(); err == nil {
			err = cerr
		}
	}
	sh.mu.Unlock()
	// Wake committers parked on the condvar so they observe closed.
	sh.cmu.Lock()
	sh.cond.Broadcast()
	sh.cmu.Unlock()
	return err
}
