package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"locble/internal/core"
)

// cp builds a distinguishable checkpoint; seq makes the bytes unique.
func cp(beacon string, seq int64) *core.SessionCheckpoint {
	return &core.SessionCheckpoint{
		Version:      core.SessionCheckpointVersion,
		Beacon:       beacon,
		Window:       6,
		Step:         2,
		SampleRateHz: 8,
		Pushed:       seq,
		GammaShift:   0.25 * float64(seq),
		GammaHist:    []float64{2.1, 2.2, 2.3},
	}
}

// cpJSON is the bit-exactness yardstick: two checkpoints are identical
// iff their canonical JSON is.
func cpJSON(t *testing.T, c *core.SessionCheckpoint) string {
	t.Helper()
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	return string(raw)
}

func requireLoad(t *testing.T, st *FileStore, beacon string, want *core.SessionCheckpoint) {
	t.Helper()
	got, found, err := st.Load(beacon)
	if err != nil {
		t.Fatalf("Load(%s): %v", beacon, err)
	}
	if !found {
		t.Fatalf("Load(%s): not found", beacon)
	}
	if g, w := cpJSON(t, got), cpJSON(t, want); g != w {
		t.Fatalf("Load(%s) not bit-exact:\n got %s\nwant %s", beacon, g, w)
	}
}

func requireAbsent(t *testing.T, st *FileStore, beacon string) {
	t.Helper()
	if _, found, err := st.Load(beacon); err != nil || found {
		t.Fatalf("Load(%s) = found=%v err=%v, want absent", beacon, found, err)
	}
}

func TestStoreRoundTripMem(t *testing.T) {
	mfs := NewMemFS()
	st, err := Open("", &Options{FS: mfs, Shards: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 20; i++ {
		b := fmt.Sprintf("beacon-%02d", i)
		if err := st.Save(b, cp(b, int64(i))); err != nil {
			t.Fatalf("Save(%s): %v", b, err)
		}
	}
	if err := st.Save("beacon-03", cp("beacon-03", 100)); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if err := st.Delete("beacon-07"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := st.Delete("never-there"); err != nil {
		t.Fatalf("Delete absent: %v", err)
	}
	if st.Len() != 19 {
		t.Fatalf("Len=%d, want 19", st.Len())
	}
	requireLoad(t, st, "beacon-03", cp("beacon-03", 100))
	requireAbsent(t, st, "beacon-07")
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Save("x", cp("x", 0)); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("Save after Close = %v, want ErrStoreClosed", err)
	}

	// Reopen over the same filesystem: everything persists, recovery
	// finds zero damage.
	st2, err := Open("", &Options{FS: mfs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if rec := st2.RecoveryStats(); rec.TornTails != 0 || rec.Quarantined != 0 {
		t.Fatalf("clean reopen reported damage: %+v", rec)
	}
	if st2.Len() != 19 {
		t.Fatalf("reopened Len=%d, want 19", st2.Len())
	}
	requireLoad(t, st2, "beacon-03", cp("beacon-03", 100))
	requireLoad(t, st2, "beacon-19", cp("beacon-19", 19))
	requireAbsent(t, st2, "beacon-07")
	// The reopened store kept the 3-shard layout even though Options
	// asked for the default.
	if len(st2.shards) != 3 {
		t.Fatalf("reopened shards=%d, want 3 from META", len(st2.shards))
	}
}

func TestStoreRoundTripDir(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 8; i++ {
		b := fmt.Sprintf("b%d", i)
		if err := st.Save(b, cp(b, int64(i))); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 8 {
		t.Fatalf("Len=%d, want 8", st2.Len())
	}
	requireLoad(t, st2, "b5", cp("b5", 5))
}

func TestStoreSnapshotCompaction(t *testing.T) {
	mfs := NewMemFS()
	st, err := Open("", &Options{FS: mfs, Shards: 1, SnapshotEvery: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 50; i++ {
		if err := st.Save("hot", cp("hot", int64(i))); err != nil {
			t.Fatalf("Save #%d: %v", i, err)
		}
	}
	// 50 appends with a rotation every 4 records: the WAL must stay
	// short and a snapshot must exist.
	wal, err := mfs.ReadFile("shard-00.wal")
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	snap, err := mfs.ReadFile("shard-00.snap")
	if err != nil {
		t.Fatalf("read snap: %v", err)
	}
	if stats := walScan(wal, 0, nil, nil); stats.records >= 4 {
		t.Fatalf("wal holds %d records after compaction, want < 4", stats.records)
	}
	if stats := walScan(snap, 0, nil, nil); stats.records != 1 {
		t.Fatalf("snapshot holds %d records, want 1", stats.records)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st2, err := Open("", &Options{FS: mfs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	requireLoad(t, st2, "hot", cp("hot", 49))
}

func TestStoreStrictCrashKeepsAcked(t *testing.T) {
	mfs := NewMemFS()
	st, err := Open("", &Options{FS: mfs, Shards: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		b := fmt.Sprintf("b%d", i)
		if err := st.Save(b, cp(b, int64(i))); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	// Power cut with NO Close: a strict crash image holds only what
	// fsync covered — which, in sync mode, is every acknowledged save.
	img := mfs.CrashImage(nil)
	st2, err := Open("", &Options{FS: img})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 10 {
		t.Fatalf("recovered %d checkpoints, want 10", st2.Len())
	}
	for i := 0; i < 10; i++ {
		b := fmt.Sprintf("b%d", i)
		requireLoad(t, st2, b, cp(b, int64(i)))
	}
	st.Close()
}

func TestStoreTornTailTruncated(t *testing.T) {
	mfs := NewMemFS()
	st, err := Open("", &Options{FS: mfs, Shards: 1, Buffered: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := st.Save("anchor", cp("anchor", 1)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := st.Sync(); err != nil { // anchor is now durable
		t.Fatalf("Sync: %v", err)
	}
	if err := st.Save("tail", cp("tail", 2)); err != nil { // buffered, never synced
		t.Fatalf("Save: %v", err)
	}
	// The power cut flushes half the unsynced append — a torn tail.
	img := mfs.CrashImage(func(unsynced int) int { return unsynced / 2 })
	st2, err := Open("", &Options{FS: img})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	rec := st2.RecoveryStats()
	if rec.TornTails != 1 || rec.Quarantined != 0 {
		t.Fatalf("recovery = %+v, want exactly one torn tail", rec)
	}
	if rec.RepairedShards != 1 {
		t.Fatalf("RepairedShards=%d, want 1 (truncate)", rec.RepairedShards)
	}
	requireLoad(t, st2, "anchor", cp("anchor", 1))
	requireAbsent(t, st2, "tail") // never acknowledged durable
	// The tear is gone from disk: a third open is clean.
	st2.Close()
	st3, err := Open("", &Options{FS: img})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer st3.Close()
	if rec := st3.RecoveryStats(); rec.TornTails != 0 || rec.Quarantined != 0 {
		t.Fatalf("tear not repaired on disk: %+v", rec)
	}
	st.Close()
}

func TestStoreBitRotQuarantined(t *testing.T) {
	mfs := NewMemFS()
	st, err := Open("", &Options{FS: mfs, Shards: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		b := fmt.Sprintf("b%d", i)
		if err := st.Save(b, cp(b, int64(i))); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Rot one bit inside the second record's payload.
	wal, err := mfs.ReadFile("shard-00.wal")
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	stats := walScan(wal, 0, nil, nil)
	if stats.records != 3 {
		t.Fatalf("setup: wal has %d records", stats.records)
	}
	// The second record starts right after the first frame.
	_, _, _, _, pos := frameAt(wal, 0, defaultMaxRecord)
	if !mfs.FlipBit("shard-00.wal", (pos+frameHeaderLen+3)*8) {
		t.Fatalf("FlipBit failed")
	}

	st2, err := Open("", &Options{FS: mfs})
	if err != nil {
		t.Fatalf("reopen over rot: %v", err)
	}
	defer st2.Close()
	rec := st2.RecoveryStats()
	if rec.Quarantined != 1 {
		t.Fatalf("Quarantined=%d, want 1 (recovery: %+v)", rec.Quarantined, rec)
	}
	if rec.RepairedShards != 1 {
		t.Fatalf("RepairedShards=%d, want 1 (rewrite)", rec.RepairedShards)
	}
	// The rotted record is quarantined — sidelined, not served.
	requireLoad(t, st2, "b0", cp("b0", 0))
	requireAbsent(t, st2, "b1")
	requireLoad(t, st2, "b2", cp("b2", 2))
	quar, err := mfs.ReadFile("shard-00.quar")
	if err != nil || len(quar) == 0 {
		t.Fatalf("quarantine sideline empty (err=%v) — damage was silently dropped", err)
	}
	if int64(len(quar)) != rec.QuarantinedBytes {
		t.Fatalf("sidelined %d bytes, counted %d", len(quar), rec.QuarantinedBytes)
	}
	// The rewrite purged the rot: another open is clean.
	st2.Close()
	st3, err := Open("", &Options{FS: mfs})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer st3.Close()
	if rec := st3.RecoveryStats(); rec.Quarantined != 0 || rec.TornTails != 0 {
		t.Fatalf("rot not purged: %+v", rec)
	}
}

func TestStoreDiskDeathAndHealing(t *testing.T) {
	mfs := NewMemFS()
	st, err := Open("", &Options{FS: mfs, Shards: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := st.Save("a", cp("a", 1)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Kill the disk: the next save must fail, not falsely ack.
	mfs.FailAfter(0)
	if err := st.Save("b", cp("b", 2)); err == nil {
		t.Fatalf("Save on dead disk acknowledged")
	}
	// Disk comes back. The shard heals itself via snapshot rotation on
	// the next save, which is then truly durable.
	mfs.FailAfter(-1)
	if err := st.Save("c", cp("c", 3)); err != nil {
		t.Fatalf("Save after heal: %v", err)
	}
	img := mfs.CrashImage(nil)
	st2, err := Open("", &Options{FS: img})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	requireLoad(t, st2, "a", cp("a", 1))
	requireLoad(t, st2, "c", cp("c", 3))
	st.Close()
}

func TestStoreGroupCommitConcurrent(t *testing.T) {
	mfs := NewMemFS()
	st, err := Open("", &Options{FS: mfs, Shards: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const (
		writers = 8
		saves   = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := fmt.Sprintf("w%d", w)
			for i := 0; i < saves; i++ {
				if err := st.Save(b, cp(b, int64(i))); err != nil {
					errs <- fmt.Errorf("%s #%d: %w", b, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every save was acknowledged durable — a strict power cut with no
	// Close must keep each writer's final value.
	img := mfs.CrashImage(nil)
	st2, err := Open("", &Options{FS: img})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	for w := 0; w < writers; w++ {
		b := fmt.Sprintf("w%d", w)
		requireLoad(t, st2, b, cp(b, saves-1))
	}
	st.Close()
}

func TestStoreBufferedCleanClose(t *testing.T) {
	mfs := NewMemFS()
	st, err := Open("", &Options{FS: mfs, Buffered: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if st.Durable() {
		t.Fatalf("Buffered store claims Durable")
	}
	if err := st.Save("b", cp("b", 7)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := st.Close(); err != nil { // clean close syncs
		t.Fatalf("Close: %v", err)
	}
	img := mfs.CrashImage(nil)
	st2, err := Open("", &Options{FS: img})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	requireLoad(t, st2, "b", cp("b", 7))
}

func TestStoreCorruptMetaDerivesShards(t *testing.T) {
	mfs := NewMemFS()
	st, err := Open("", &Options{FS: mfs, Shards: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 12; i++ {
		b := fmt.Sprintf("b%d", i)
		if err := st.Save(b, cp(b, int64(i))); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A crash mid-creation left META garbage. The shard files are the
	// ground truth for the layout.
	mfs.SetFile("META", []byte("{half a json"))
	st2, err := Open("", &Options{FS: mfs}) // note: default Options asks for 4
	if err != nil {
		t.Fatalf("reopen with corrupt META: %v", err)
	}
	defer st2.Close()
	if len(st2.shards) != 3 {
		t.Fatalf("derived %d shards, want 3 from shard files", len(st2.shards))
	}
	if st2.Len() != 12 {
		t.Fatalf("Len=%d, want 12", st2.Len())
	}
	for i := 0; i < 12; i++ {
		b := fmt.Sprintf("b%d", i)
		requireLoad(t, st2, b, cp(b, int64(i)))
	}
}

func TestStoreLoadCorruptValue(t *testing.T) {
	// Plant a WAL whose record is CRC-valid but holds non-checkpoint
	// bytes: Load must report ErrCorruptCheckpoint, not found=false.
	mfs := NewMemFS()
	st, err := Open("", &Options{FS: mfs, Shards: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st.Close()
	wal := appendRecord(nil, opSave, "poison", []byte("this is not json"))
	mfs.SetFile("shard-00.wal", wal)
	st2, err := Open("", &Options{FS: mfs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	_, _, err = st2.Load("poison")
	if !errors.Is(err, core.ErrCorruptCheckpoint) {
		t.Fatalf("Load corrupt value = %v, want ErrCorruptCheckpoint", err)
	}
}

func TestStoreBeacons(t *testing.T) {
	mfs := NewMemFS()
	st, err := Open("", &Options{FS: mfs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	for _, b := range []string{"zz", "aa", "mm"} {
		if err := st.Save(b, cp(b, 1)); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	got := st.Beacons()
	if len(got) != 3 || got[0] != "aa" || got[1] != "mm" || got[2] != "zz" {
		t.Fatalf("Beacons() = %v, want sorted [aa mm zz]", got)
	}
}
