package durable

import (
	"bytes"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the store as a shard WAL. The
// contract under any mutation of a valid log (or pure garbage):
//
//   - recovery never panics and Open never fails on a healthy disk;
//   - no replayed record is corrupt-but-accepted — every applied
//     record re-verifies its checksum (walScan only surfaces frames
//     whose CRC and structure already verified; the assertion here
//     re-derives that independently);
//   - the store is left openable, and the repair is real: a second
//     open of the repaired files finds zero damage.
func FuzzWALReplay(f *testing.F) {
	var valid []byte
	valid = appendRecord(valid, opSave, "beacon-a", []byte(`{"version":3,"beacon":"beacon-a"}`))
	valid = appendRecord(valid, opSave, "beacon-b", []byte(`{"version":3,"beacon":"beacon-b"}`))
	valid = appendRecord(valid, opDelete, "beacon-a", nil)
	valid = appendRecord(valid, opSave, "beacon-c", bytes.Repeat([]byte("x"), 300))

	f.Add(valid)
	f.Add(valid[:len(valid)-5])                       // torn tail
	f.Add(append([]byte("garbage prefix"), valid...)) // leading damage
	f.Add([]byte{})                                   // empty log
	f.Add([]byte("complete garbage, no frames at all"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped) // mid-log bit rot

	f.Fuzz(func(t *testing.T, wal []byte) {
		// Independent invariant: walScan must account for every byte and
		// only apply checksum-valid records.
		var applied int64
		st := walScan(wal, 0, func(op byte, name string, val []byte) {
			applied++
			if name == "" {
				t.Fatalf("applied record with empty name")
			}
			if op != opSave && op != opDelete {
				t.Fatalf("applied record with op %#x", op)
			}
		}, nil)
		if st.records != applied {
			t.Fatalf("stats.records=%d but %d applied", st.records, applied)
		}
		if st.cleanLen > int64(len(wal)) {
			t.Fatalf("cleanLen %d > file size %d", st.cleanLen, len(wal))
		}

		// Store-level: the mutated WAL must never make the store
		// unopenable on a healthy disk.
		mfs := NewMemFS()
		mfs.SetFile("META", []byte(`{"version":1,"shards":1}`))
		mfs.SetFile("shard-00.wal", wal)
		store, err := Open("", &Options{FS: mfs})
		if err != nil {
			t.Fatalf("Open over fuzzed WAL: %v", err)
		}
		n := store.Len()
		if err := store.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// The repair must stick: reopening finds a clean store with the
		// same contents.
		store2, err := Open("", &Options{FS: mfs})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer store2.Close()
		if rec := store2.RecoveryStats(); rec.TornTails != 0 || rec.Quarantined != 0 {
			t.Fatalf("damage survived the repair: %+v", rec)
		}
		if store2.Len() != n {
			t.Fatalf("repair changed contents: %d -> %d checkpoints", n, store2.Len())
		}
	})
}
