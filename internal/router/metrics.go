package router

import (
	"fmt"

	"locble/internal/obs"
)

// metrics resolves every router metric handle once at construction, on
// a per-router registry (the fleet pattern). Per-node series are
// indexed by the node's position in the configured address list —
// stable for the router's lifetime — with the address carried in the
// DESIGN'd router.node.<i>.* naming.
type metrics struct {
	reg *obs.Registry

	// Ingest shape: batches routed, observations fanned out, batch-size
	// distribution, and whole-batch latency (grouping + fan-out + merge).
	batches   *obs.Counter
	obsRouted *obs.Counter
	batchSize *obs.Histogram
	pushSpan  *obs.Timer

	// Membership: nodes currently in the ring (gauge, high-water = the
	// cluster's peak size), ring membership changes (churn), and vnodes
	// remapped by those changes (the rebalance volume).
	ringNodes       *obs.Gauge
	ringChurn       *obs.Counter
	rebalanceVNodes *obs.Counter

	// Drain handoffs: Drain calls and the sessions they checkpointed
	// off the drained node.
	drains          *obs.Counter
	drainedSessions *obs.Counter

	// Failure handling: beacon groups served by a non-home node while
	// their home node is dead (each is a typed Degraded result), node
	// exchanges that failed outright, and node connections successfully
	// re-established after a drop (the persistent-connection churn).
	failoverGroups *obs.Counter
	nodeErrors     *obs.Counter
	reconnects     *obs.Counter

	// Per-node: batches and observations landed, exchange latency.
	node []nodeMetrics
}

type nodeMetrics struct {
	batches  *obs.Counter
	obsSent  *obs.Counter
	pushSpan *obs.Timer
}

func newMetrics(n int) *metrics {
	r := obs.NewRegistry()
	m := &metrics{
		reg:             r,
		batches:         r.Counter("router.batches"),
		obsRouted:       r.Counter("router.obs.routed"),
		batchSize:       r.Histogram("router.batch.size", []float64{1, 8, 32, 128, 512, 2048}),
		pushSpan:        r.Timer("router.push.seconds"),
		ringNodes:       r.Gauge("router.ring.nodes"),
		ringChurn:       r.Counter("router.ring.churn"),
		rebalanceVNodes: r.Counter("router.rebalance.vnodes"),
		drains:          r.Counter("router.drains"),
		drainedSessions: r.Counter("router.drained.sessions"),
		failoverGroups:  r.Counter("router.failover.groups"),
		nodeErrors:      r.Counter("router.node.errors"),
		reconnects:      r.Counter("router.backend.reconnects"),
		node:            make([]nodeMetrics, n),
	}
	for i := range m.node {
		m.node[i] = nodeMetrics{
			batches:  r.Counter(fmt.Sprintf("router.node.%d.batches", i)),
			obsSent:  r.Counter(fmt.Sprintf("router.node.%d.obs", i)),
			pushSpan: r.Timer(fmt.Sprintf("router.node.%d.push.seconds", i)),
		}
	}
	return m
}

// Metrics returns a consistent snapshot of the router's metrics. Safe
// to call concurrently with routing.
func (r *Router) Metrics() obs.Snapshot { return r.met.reg.Snapshot() }

// MetricsRegistry exposes the router's registry — to mount its Handler
// on a debug listener or merge it into a process-wide snapshot.
func (r *Router) MetricsRegistry() *obs.Registry { return r.met.reg }
