package router

import (
	"context"
	"sync"

	"locble/internal/netproto"
)

// Backend is one fleet node as the router sees it: batched ingest plus
// the drain handoff. The production implementation dials a netproto
// fleet server; tests may substitute in-process fakes. Push and Drain
// are serialized by the router (a node handles one router exchange at a
// time), so implementations need not be concurrent-safe.
type Backend interface {
	Push(ctx context.Context, obs []netproto.PushObs) ([]netproto.PushResult, error)
	Drain(ctx context.Context) (int, error)
	Close() error
}

// dialBackend is the wire Backend: a lazily-dialed, cached
// netproto.FleetClient. A failed exchange closes the connection and the
// next call redials — the router's breaker decides whether that next
// call happens at all, so a dead node costs one dial per probe, not per
// batch.
type dialBackend struct {
	addr string

	mu sync.Mutex
	cl *netproto.FleetClient
}

func newDialBackend(addr string) *dialBackend { return &dialBackend{addr: addr} }

// client returns the cached connection, dialing if needed. Callers hold
// b.mu.
func (b *dialBackend) client(ctx context.Context) (*netproto.FleetClient, error) {
	if b.cl != nil {
		return b.cl, nil
	}
	cl, err := netproto.DialFleet(ctx, b.addr)
	if err != nil {
		return nil, err
	}
	b.cl = cl
	return cl, nil
}

// drop discards the cached connection after a failed exchange (the
// stream position is unknown; reusing it could misparse frames).
// Callers hold b.mu.
func (b *dialBackend) drop() {
	if b.cl != nil {
		b.cl.Close()
		b.cl = nil
	}
}

// Push implements Backend over the {"op":"push"} exchange.
func (b *dialBackend) Push(ctx context.Context, obs []netproto.PushObs) ([]netproto.PushResult, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cl, err := b.client(ctx)
	if err != nil {
		return nil, err
	}
	res, err := cl.Push(ctx, obs)
	if err != nil {
		b.drop()
		return nil, err
	}
	return res, nil
}

// Drain implements Backend over the {"op":"drain"} exchange.
func (b *dialBackend) Drain(ctx context.Context) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cl, err := b.client(ctx)
	if err != nil {
		return 0, err
	}
	n, err := cl.Drain(ctx)
	if err != nil {
		b.drop()
		return 0, err
	}
	return n, nil
}

// Close implements Backend.
func (b *dialBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cl == nil {
		return nil
	}
	err := b.cl.Close()
	b.cl = nil
	return err
}
