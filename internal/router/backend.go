package router

import (
	"context"
	"sync"

	"locble/internal/netproto"
	"locble/internal/obs"
)

// Backend is one fleet node as the router sees it: batched ingest plus
// the drain handoff. The production implementation keeps one persistent
// netproto fleet connection and multiplexes concurrent exchanges onto
// it through the client's pipelining window; tests may substitute
// in-process fakes. Implementations must be safe for concurrent use —
// overlapping PushBatch calls push to the same node at the same time.
type Backend interface {
	Push(ctx context.Context, obs []netproto.PushObs) ([]netproto.PushResult, error)
	Drain(ctx context.Context) (int, error)
	Close() error
}

// dialBackend is the wire Backend: a lazily-dialed, persistent
// netproto.FleetClient shared by all concurrent exchanges. A failed
// exchange closes the connection (the pipeline is poisoned — the
// stream position is unknown) and the next call redials; the router's
// breaker decides whether that next call happens at all, so a dead
// node costs one dial per probe, not per batch.
type dialBackend struct {
	addr string
	cfg  netproto.FleetDialConfig

	// reconnects counts successful redials after a dropped connection
	// (set by New once the router's registry exists; nil in tests).
	reconnects *obs.Counter

	mu     sync.Mutex
	cl     *netproto.FleetClient
	dialed bool // a connection has been established before
	closed bool
}

func newDialBackend(addr string, cfg netproto.FleetDialConfig) *dialBackend {
	return &dialBackend{addr: addr, cfg: cfg}
}

// client returns the cached connection, dialing if needed. The dial
// happens under b.mu — concurrent exchanges wait rather than stampede
// the node with parallel dials.
func (b *dialBackend) client(ctx context.Context) (*netproto.FleetClient, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, netproto.ErrClientClosed
	}
	if b.cl != nil {
		return b.cl, nil
	}
	cl, err := netproto.DialFleetWith(ctx, b.addr, b.cfg)
	if err != nil {
		return nil, err
	}
	if b.dialed && b.reconnects != nil {
		b.reconnects.Inc()
	}
	b.dialed = true
	b.cl = cl
	return cl, nil
}

// dropIf discards the cached connection after a failed exchange — but
// only if it is still the one the failure happened on. A concurrent
// caller may have dropped it and redialed already; closing the
// replacement would orphan its in-flight exchanges.
func (b *dialBackend) dropIf(cl *netproto.FleetClient) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cl == cl {
		b.cl.Close()
		b.cl = nil
	}
}

// Push implements Backend over the {"op":"push"} exchange. Concurrent
// calls pipeline onto the shared connection.
func (b *dialBackend) Push(ctx context.Context, obs []netproto.PushObs) ([]netproto.PushResult, error) {
	cl, err := b.client(ctx)
	if err != nil {
		return nil, err
	}
	res, err := cl.Push(ctx, obs)
	if err != nil {
		b.dropIf(cl)
		return nil, err
	}
	return res, nil
}

// Drain implements Backend over the {"op":"drain"} exchange. It rides
// the same pipeline as pushes, so it is ordered after every push
// already written.
func (b *dialBackend) Drain(ctx context.Context) (int, error) {
	cl, err := b.client(ctx)
	if err != nil {
		return 0, err
	}
	n, err := cl.Drain(ctx)
	if err != nil {
		b.dropIf(cl)
		return 0, err
	}
	return n, nil
}

// Close implements Backend.
func (b *dialBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	if b.cl == nil {
		return nil
	}
	err := b.cl.Close()
	b.cl = nil
	return err
}
