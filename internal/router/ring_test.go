package router

import (
	"fmt"
	"testing"
)

func testMembers(n int) map[int]string {
	m := make(map[int]string, n)
	for i := 0; i < n; i++ {
		m[i] = fmt.Sprintf("127.0.0.1:%d", 7000+i)
	}
	return m
}

func keyOwner(rg ring, seed uint64, key string) int {
	return rg.owner(ringHash(seed, key, -1))
}

// TestRingDeterministic: two rings built from the same members, vnode
// count and seed agree on every key — the property that lets
// independent gateways route consistently without coordination.
func TestRingDeterministic(t *testing.T) {
	const seed = 42
	a := buildRing(testMembers(3), 64, seed)
	b := buildRing(testMembers(3), 64, seed)
	if len(a.pts) != 3*64 || len(b.pts) != 3*64 {
		t.Fatalf("ring sizes %d, %d, want %d", len(a.pts), len(b.pts), 3*64)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("beacon-%03d", i)
		if ao, bo := keyOwner(a, seed, key), keyOwner(b, seed, key); ao != bo {
			t.Fatalf("key %q: owners %d vs %d across identical rings", key, ao, bo)
		}
	}
}

// TestRingSeedChangesPlacement: a different seed produces a genuinely
// different placement (the seed is live, not decorative).
func TestRingSeedChangesPlacement(t *testing.T) {
	a := buildRing(testMembers(3), 64, 1)
	b := buildRing(testMembers(3), 64, 2)
	moved := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("beacon-%03d", i)
		if keyOwner(a, 1, key) != keyOwner(b, 2, key) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the seed moved no keys — the seed is not salting the hash")
	}
}

// TestRingDistribution: with 64 vnodes each of 3 nodes owns a
// non-degenerate share of 600 keys (virtual nodes are doing their job).
func TestRingDistribution(t *testing.T) {
	rg := buildRing(testMembers(3), 64, 7)
	counts := make(map[int]int)
	for i := 0; i < 600; i++ {
		counts[keyOwner(rg, 7, fmt.Sprintf("beacon-%03d", i))]++
	}
	for n := 0; n < 3; n++ {
		if counts[n] < 60 { // 10% of keys; an even split would be 200
			t.Errorf("node %d owns only %d/600 keys — placement is degenerate (%v)", n, counts[n], counts)
		}
	}
}

// TestRingRemovalStability is the consistent-hashing contract: removing
// one node remaps only that node's keys; every other key keeps its
// owner. This is what makes Drain a local event instead of a full
// rebalance.
func TestRingRemovalStability(t *testing.T) {
	const seed = 11
	full := testMembers(3)
	before := buildRing(full, 64, seed)
	delete(full, 1)
	after := buildRing(full, 64, seed)

	remapped := 0
	for i := 0; i < 600; i++ {
		key := fmt.Sprintf("beacon-%03d", i)
		ob, oa := keyOwner(before, seed, key), keyOwner(after, seed, key)
		if ob == 1 {
			if oa == 1 {
				t.Fatalf("key %q still owned by removed node", key)
			}
			remapped++
			continue
		}
		if oa != ob {
			t.Fatalf("key %q moved %d -> %d although its owner stayed in the ring", key, ob, oa)
		}
	}
	if remapped == 0 {
		t.Fatal("removed node owned no keys — distribution test should have caught this")
	}
}

// TestRingWalkVisitsAllDistinct: the failover walk offers every node
// exactly once, home first.
func TestRingWalkVisitsAllDistinct(t *testing.T) {
	rg := buildRing(testMembers(3), 16, 3)
	h := ringHash(3, "walk-key", -1)
	var order []int
	rg.walk(h, func(n int) bool {
		order = append(order, n)
		return true
	})
	if len(order) != 3 {
		t.Fatalf("walk visited %v, want 3 distinct nodes", order)
	}
	seen := map[int]bool{}
	for _, n := range order {
		if seen[n] {
			t.Fatalf("walk visited node %d twice: %v", n, order)
		}
		seen[n] = true
	}
	if order[0] != rg.owner(h) {
		t.Fatalf("walk started at %d, want home node %d", order[0], rg.owner(h))
	}
}

// TestRingEmpty: an empty ring owns nothing and walks nowhere.
func TestRingEmpty(t *testing.T) {
	rg := buildRing(nil, 64, 0)
	if got := rg.owner(123); got != -1 {
		t.Fatalf("empty ring owner = %d, want -1", got)
	}
	rg.walk(123, func(int) bool { t.Fatal("walk on empty ring visited a node"); return false })
}
