package router

import (
	"context"
	"errors"
	"testing"
	"time"

	"locble/internal/core"
	"locble/internal/durable"
	"locble/internal/estimate"
	"locble/internal/fleet"
	"locble/internal/netproto"
	"locble/internal/resilience"
	"locble/internal/testutil"
)

// testNode is one in-process fleet server: its own engine and fleet (a
// separate machine in production), optionally sharing a checkpoint
// store with its peers.
type testNode struct {
	addr string
	fl   *fleet.Fleet
	srv  *netproto.Server
}

// startCluster boots n fleet servers on loopback. A non-nil store is
// shared by every node — the deployment shape Drain handoff requires.
func startCluster(t *testing.T, n int, store fleet.CheckpointStore) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := 0; i < n; i++ {
		eng, err := core.NewEngine(core.DefaultConfig())
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		t.Cleanup(func() { eng.Close() })
		fl, err := fleet.New(eng, fleet.Config{
			Session: core.TrackSessionConfig{SampleRateHz: 8},
			Store:   store,
		})
		if err != nil {
			t.Fatalf("fleet.New: %v", err)
		}
		t.Cleanup(func() { fl.Close() })
		srv, err := netproto.NewServer("router-node", 0)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		t.Cleanup(func() { srv.Close() })
		srv.SetFleet(fl)
		nodes[i] = &testNode{addr: srv.Addr(), fl: fl, srv: srv}
	}
	return nodes
}

func clusterAddrs(nodes []*testNode) []string {
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}
	return addrs
}

// localReplay is the ground truth: one uninterrupted standalone session
// fed the stream sequentially, fixes in wire shape for struct-equality
// comparison (JSON carries float64 exactly, so wire == local bit for
// bit).
func localReplay(t *testing.T, eng *core.Engine, beacon string, stream []fleet.Obs) []netproto.PushFix {
	t.Helper()
	s, err := eng.NewTrackSession(core.TrackSessionConfig{Beacon: beacon, SampleRateHz: 8})
	if err != nil {
		t.Fatalf("NewTrackSession(%s): %v", beacon, err)
	}
	var want []netproto.PushFix
	for _, o := range stream {
		pt, err := s.Push(estimate.Obs{T: o.T, RSS: o.RSS, P: o.P, Q: o.Q})
		if err != nil {
			t.Fatalf("local Push(%s): %v", beacon, err)
		}
		if pt != nil {
			want = append(want, netproto.PushFix{
				T: pt.T, X: pt.Est.X, Y: pt.Est.H,
				N: pt.Est.N, Gamma: pt.Est.Gamma,
				Confidence: pt.Est.Confidence,
				Mode:       pt.Mode.String(),
				Samples:    pt.Samples,
			})
		}
	}
	return want
}

func requireSameFixes(t *testing.T, beacon string, got, want []netproto.PushFix) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d routed fixes, want %d", beacon, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s fix %d differs from sequential replay:\n got  %+v\n want %+v", beacon, i, got[i], want[i])
		}
	}
}

// TestRouterEquivalence is the scale-out contract, run under -race by
// the race suite: a 3-node routed cluster fed mixed batches by
// concurrent pushers produces, per beacon, exactly the fix stream of a
// single uninterrupted session replayed sequentially — bit-identical
// floats, not approximately equal. Routing across machines is pure
// transport.
func TestRouterEquivalence(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	nodes := startCluster(t, 3, nil)
	r, err := New(clusterAddrs(nodes), Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const beacons, pushers, n, slice = 12, 3, 240, 24
	streams := make(map[string][]fleet.Obs, beacons)
	names := make([]string, beacons)
	for i := range names {
		names[i] = "eq-" + string(rune('a'+i))
		streams[names[i]] = fleet.SynthStream(names[i], n, float64(i)*0.9)
	}

	// Each pusher owns a disjoint beacon subset and pushes its slices in
	// order; pushers interleave freely on the shared router. Per-beacon
	// input order is all the equivalence argument needs.
	type obsOut struct {
		fixes map[string][]netproto.PushFix
		node  map[string]string
		err   error
	}
	outs := make([]obsOut, pushers)
	done := make(chan int, pushers)
	for pi := 0; pi < pushers; pi++ {
		go func(pi int) {
			out := obsOut{fixes: map[string][]netproto.PushFix{}, node: map[string]string{}}
			defer func() { outs[pi] = out; done <- pi }()
			for lo := 0; lo < n; lo += slice {
				var batch []fleet.Obs
				for bi := pi; bi < beacons; bi += pushers {
					batch = append(batch, streams[names[bi]][lo:lo+slice]...)
				}
				results, err := r.PushBatch(ctx, batch)
				if err != nil {
					out.err = err
					return
				}
				for _, res := range results {
					if res.Err != nil {
						out.err = res.Err
						return
					}
					if res.Degraded {
						out.err = errors.New(res.Beacon + ": unexpectedly degraded on a healthy cluster")
						return
					}
					if prev, ok := out.node[res.Beacon]; ok && prev != res.Node {
						out.err = errors.New(res.Beacon + ": moved nodes mid-stream (" + prev + " -> " + res.Node + ")")
						return
					}
					out.node[res.Beacon] = res.Node
					out.fixes[res.Beacon] = append(out.fixes[res.Beacon], res.Fixes...)
				}
			}
		}(pi)
	}
	for i := 0; i < pushers; i++ {
		<-done
	}

	eng, err := core.NewEngine(core.DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	served := map[string]bool{}
	for _, out := range outs {
		if out.err != nil {
			t.Fatalf("pusher failed: %v", out.err)
		}
		for beacon, fixes := range out.fixes {
			requireSameFixes(t, beacon, fixes, localReplay(t, eng, beacon, streams[beacon]))
			served[out.node[beacon]] = true
		}
	}
	if len(served) < 2 {
		t.Errorf("all %d beacons landed on one node — ring distribution is degenerate", beacons)
	}

	met := r.Metrics()
	if got := met.Counters["router.batches"]; got != int64(pushers*n/slice) {
		t.Errorf("router.batches = %d, want %d", got, pushers*n/slice)
	}
	if got := met.Counters["router.obs.routed"]; got != int64(beacons*n) {
		t.Errorf("router.obs.routed = %d, want %d", got, beacons*n)
	}
	if got := met.Gauges["router.ring.nodes"].Value; got != 3 {
		t.Errorf("router.ring.nodes = %d, want 3", got)
	}
	if got := met.Counters["router.failover.groups"]; got != 0 {
		t.Errorf("router.failover.groups = %d on a healthy cluster, want 0", got)
	}
}

// TestRouterDrainHandoff is the kill-and-handoff acceptance test: three
// nodes share one durable file store; mid-stream, one node is drained.
// Its sessions checkpoint into the store, its beacons re-admit on the
// survivors with Restored set (not Degraded — a drain is planned), and
// the full fix streams are bit-identical to uninterrupted sequential
// replays. Zero acknowledged fixes are lost.
func TestRouterDrainHandoff(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	st, err := durable.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	nodes := startCluster(t, 3, st)
	r, err := New(clusterAddrs(nodes), Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const beacons, n, half, slice = 8, 240, 120, 24
	streams := make(map[string][]fleet.Obs, beacons)
	names := make([]string, beacons)
	for i := range names {
		names[i] = "dr-" + string(rune('a'+i))
		streams[names[i]] = fleet.SynthStream(names[i], n, float64(i)*1.3)
	}
	push := func(lo, hi int) map[string][]Result {
		t.Helper()
		byBeacon := map[string][]Result{}
		for at := lo; at < hi; at += slice {
			var batch []fleet.Obs
			for _, name := range names {
				batch = append(batch, streams[name][at:at+slice]...)
			}
			results, err := r.PushBatch(ctx, batch)
			if err != nil {
				t.Fatalf("PushBatch @%d: %v", at, err)
			}
			for _, res := range results {
				if res.Err != nil {
					t.Fatalf("%s @%d: %v", res.Beacon, at, res.Err)
				}
				byBeacon[res.Beacon] = append(byBeacon[res.Beacon], res)
			}
		}
		return byBeacon
	}

	first := push(0, half)
	home := map[string]string{}
	for name, rs := range first {
		home[name] = rs[0].Node
	}

	// Drain the node serving dr-a (guaranteed non-empty). Drained must
	// equal the sessions resident there: every beacon it was serving.
	victim := home[names[0]]
	owned := 0
	for _, name := range names {
		if home[name] == victim {
			owned++
		}
	}
	drained, err := r.Drain(ctx, victim)
	if err != nil {
		t.Fatalf("Drain(%s): %v", victim, err)
	}
	if drained != owned {
		t.Fatalf("Drain checkpointed %d sessions, want %d (the beacons it served)", drained, owned)
	}

	second := push(half, n)
	for _, name := range names {
		rs := second[name]
		if rs[0].Node == victim {
			t.Fatalf("%s still served by drained node %s", name, victim)
		}
		if home[name] == victim {
			if !rs[0].Restored {
				t.Errorf("%s: first post-drain batch not Restored — handoff lost the checkpoint", name)
			}
			if rs[0].Degraded {
				t.Errorf("%s: drain handoff marked Degraded — a planned drain is not a failover", name)
			}
		} else if rs[0].Node != home[name] {
			t.Errorf("%s moved %s -> %s although its home survived the drain", name, home[name], rs[0].Node)
		}
	}

	// The acceptance bar: streams across the handoff are bit-identical
	// to uninterrupted replays — zero acknowledged fixes lost.
	eng, err := core.NewEngine(core.DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	for _, name := range names {
		var got []netproto.PushFix
		for _, res := range append(first[name], second[name]...) {
			got = append(got, res.Fixes...)
		}
		requireSameFixes(t, name, got, localReplay(t, eng, name, streams[name]))
	}

	met := r.Metrics()
	if got := met.Counters["router.drains"]; got != 1 {
		t.Errorf("router.drains = %d, want 1", got)
	}
	if got := met.Counters["router.drained.sessions"]; got != int64(owned) {
		t.Errorf("router.drained.sessions = %d, want %d", got, owned)
	}
	if got := met.Gauges["router.ring.nodes"].Value; got != 2 {
		t.Errorf("router.ring.nodes = %d after drain, want 2", got)
	}
	if got := met.Counters["router.ring.churn"]; got != 1 {
		t.Errorf("router.ring.churn = %d, want 1", got)
	}
	for _, ns := range r.Nodes() {
		if ns.Addr == victim {
			if ns.State != "drained" || ns.Drained != owned {
				t.Errorf("victim status = %+v, want drained with %d sessions", ns, owned)
			}
		} else if ns.State != "up" {
			t.Errorf("survivor %s state = %q, want up", ns.Addr, ns.State)
		}
	}
}

// TestRouterDeadNodeFailover: a node that dies without draining. Its
// beacons fail over clockwise with typed Degraded results — ingest
// keeps flowing as errors-by-default would not — and after enough
// failed exchanges the breaker opens, so later batches skip the corpse
// without paying a dial.
func TestRouterDeadNodeFailover(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	// A long OpenTimeout keeps the tripped breaker open for the whole
	// test — no half-open probes, so the failure accounting below is
	// exact rather than timing-dependent.
	r, err := New(clusterAddrs(nodes), Config{Breaker: resilience.BreakerConfig{OpenTimeout: time.Hour}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const beacons, n, slice = 6, 96, 12
	streams := make(map[string][]fleet.Obs, beacons)
	names := make([]string, beacons)
	for i := range names {
		names[i] = "fo-" + string(rune('a'+i))
		streams[names[i]] = fleet.SynthStream(names[i], n, float64(i)*0.7)
	}
	push := func(at int) map[string]Result {
		t.Helper()
		var batch []fleet.Obs
		for _, name := range names {
			batch = append(batch, streams[name][at:at+slice]...)
		}
		results, err := r.PushBatch(ctx, batch)
		if err != nil {
			t.Fatalf("PushBatch @%d: %v", at, err)
		}
		byBeacon := map[string]Result{}
		for _, res := range results {
			byBeacon[res.Beacon] = res
		}
		return byBeacon
	}

	first := push(0)
	victim := first[names[0]].Node
	var orphans []string
	for _, name := range names {
		if first[name].Node == victim {
			orphans = append(orphans, name)
		}
	}
	// Kill the victim hard: close its server so new dials are refused
	// and in-flight connections die. No drain, no checkpoint.
	for _, tn := range nodes {
		if tn.addr == victim {
			tn.srv.Close()
		}
	}

	for round := 1; round < n/slice; round++ {
		res := push(round * slice)
		for _, name := range names {
			got := res[name]
			if got.Err != nil {
				t.Fatalf("%s round %d: %v (failover must degrade, not error)", name, round, got.Err)
			}
			orphaned := first[name].Node == victim
			if got.Degraded != orphaned {
				t.Fatalf("%s round %d: Degraded=%v, want %v", name, round, got.Degraded, orphaned)
			}
			if orphaned {
				if got.DegradedReason != ReasonNodeFailover {
					t.Fatalf("%s round %d: DegradedReason=%q, want %q", name, round, got.DegradedReason, ReasonNodeFailover)
				}
				if got.Node == victim {
					t.Fatalf("%s round %d: served by the dead node", name, round)
				}
			}
		}
	}

	// The victim entered the kill with one recorded success; its first
	// failed exchange makes 2 samples at 50% failure — the breaker trips
	// on exactly one error and every later round skips the corpse
	// without dialing.
	for _, ns := range r.Nodes() {
		if ns.Addr == victim && ns.State != "down" {
			t.Errorf("dead node state = %q, want down (breaker open)", ns.State)
		}
	}
	met := r.Metrics()
	if got := met.Counters["router.node.errors"]; got != 1 {
		t.Errorf("router.node.errors = %d, want exactly 1 (the exchange that tripped the breaker)", got)
	}
	wantFailovers := int64(len(orphans)) * int64(n/slice-1)
	if got := met.Counters["router.failover.groups"]; got != wantFailovers {
		t.Errorf("router.failover.groups = %d, want %d (%d orphans x %d degraded rounds)", got, wantFailovers, len(orphans), n/slice-1)
	}
}

// TestRouterNoUsableNodes: with every node out of the ring, PushBatch
// still answers per beacon — each result carries ErrNoNodes instead of
// the whole batch erroring.
func TestRouterNoUsableNodes(t *testing.T) {
	nodes := startCluster(t, 1, fleet.NewMemStore())
	r, err := New(clusterAddrs(nodes), Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()
	ctx := context.Background()
	if _, err := r.Drain(ctx, nodes[0].addr); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	results, err := r.PushBatch(ctx, fleet.SynthStream("stranded", 8, 0))
	if err != nil {
		t.Fatalf("PushBatch: %v", err)
	}
	if len(results) != 1 || !errors.Is(results[0].Err, ErrNoNodes) {
		t.Fatalf("results = %+v, want one result with ErrNoNodes", results)
	}
}

// TestRouterDrainValidation: unknown addresses and double drains are
// caller errors, reported before any ring change.
func TestRouterDrainValidation(t *testing.T) {
	nodes := startCluster(t, 2, fleet.NewMemStore())
	r, err := New(clusterAddrs(nodes), Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()
	ctx := context.Background()
	if _, err := r.Drain(ctx, "127.0.0.1:1"); err == nil {
		t.Fatal("Drain of an unknown address succeeded")
	}
	if _, err := r.Drain(ctx, nodes[0].addr); err != nil {
		t.Fatalf("first Drain: %v", err)
	}
	if _, err := r.Drain(ctx, nodes[0].addr); err == nil {
		t.Fatal("second Drain of the same node succeeded")
	}
}

// TestRouterClosed: Close is idempotent and fails later calls typed.
func TestRouterClosed(t *testing.T) {
	nodes := startCluster(t, 1, nil)
	r, err := New(clusterAddrs(nodes), Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := r.PushBatch(context.Background(), fleet.SynthStream("x", 4, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("PushBatch after Close = %v, want ErrClosed", err)
	}
	if _, err := r.Drain(context.Background(), nodes[0].addr); !errors.Is(err, ErrClosed) {
		t.Fatalf("Drain after Close = %v, want ErrClosed", err)
	}
}

// TestRouterConfigValidation: the address list is the cluster identity —
// empty, blank, and duplicate entries are construction errors.
func TestRouterConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("New(nil) succeeded")
	}
	if _, err := New([]string{""}, Config{}); err == nil {
		t.Error("New with empty address succeeded")
	}
	if _, err := New([]string{"a:1", "a:1"}, Config{}); err == nil {
		t.Error("New with duplicate addresses succeeded")
	}
}
