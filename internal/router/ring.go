// Consistent-hash ring: the deterministic beacon→node map behind the
// multi-node router. Each in-ring node contributes VNodes points placed
// by a seeded FNV-1a hash of "addr#v"; a beacon hashes onto the circle
// with the same seeded hash and lands on the first point clockwise.
// Virtual nodes spread each node's key range into many small arcs, so
// removing one node (a drain) scatters only its own beacons — evenly —
// over the survivors, and every other beacon keeps its owner. The seed
// makes the whole placement reproducible: two routers built with the
// same node list, VNodes and Seed agree on every beacon's owner, which
// is what lets independent gateways route consistently without talking
// to each other.
package router

import "sort"

// fnv64 constants (the same hash the fleet's shard index uses, here
// salted with a seed so ring placements are reproducible yet tunable).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// ringHash is seeded FNV-1a over key plus a vnode ordinal (vn < 0 skips
// the ordinal — the form beacon keys use), finished with a full-width
// bit mixer. Raw FNV-1a is fine for the fleet's modulo shard index but
// not for a ring: a trailing byte only passes through one multiply, so
// related keys ("beacon-001", "beacon-002") barely differ in the high
// bits that decide ring position and whole nodes can end up owning
// nothing. The finalizer (64-bit avalanche, murmur-style constants)
// spreads every input bit across the word.
func ringHash(seed uint64, key string, vn int) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	if vn >= 0 {
		h ^= '#'
		h *= fnvPrime64
		for s := 0; s < 32; s += 8 { // vnode ordinal as 4 fixed bytes
			h ^= uint64(vn>>s) & 0xff
			h *= fnvPrime64
		}
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// vpoint is one virtual node on the ring.
type vpoint struct {
	hash uint64
	node int // index into the router's node table
}

// ring is an immutable sorted vnode circle. Membership changes build a
// fresh ring (a snapshot PushBatch can hold without locking).
type ring struct {
	pts []vpoint
}

// buildRing places VNodes points per member node. members maps node
// index → address; order ties on equal hashes break by node index, so
// the ring is deterministic even under (astronomically unlikely) hash
// collisions.
func buildRing(members map[int]string, vnodes int, seed uint64) ring {
	pts := make([]vpoint, 0, len(members)*vnodes)
	for idx, addr := range members {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, vpoint{hash: ringHash(seed, addr, v), node: idx})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].node < pts[j].node
	})
	return ring{pts: pts}
}

// successor returns the index into pts of the first point at or
// clockwise of h.
func (r ring) successor(h uint64) int {
	i := sort.Search(len(r.pts), func(i int) bool { return r.pts[i].hash >= h })
	if i == len(r.pts) {
		i = 0
	}
	return i
}

// owner returns the home node for a key hash: the first node clockwise.
// Returns -1 on an empty ring.
func (r ring) owner(h uint64) int {
	if len(r.pts) == 0 {
		return -1
	}
	return r.pts[r.successor(h)].node
}

// walk visits the distinct nodes clockwise from h (the home node first,
// then each failover candidate in ring order) until visit returns false
// or every in-ring node has been offered once.
func (r ring) walk(h uint64, visit func(node int) bool) {
	if len(r.pts) == 0 {
		return
	}
	seen := make(map[int]bool, 8)
	start := r.successor(h)
	for i := 0; i < len(r.pts); i++ {
		p := r.pts[(start+i)%len(r.pts)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if !visit(p.node) {
			return
		}
	}
}
