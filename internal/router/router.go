// Package router scales fleet serving across machines: a consistent-
// hash router that fans mixed-beacon observation batches out over N
// netproto fleet servers and merges the per-beacon results back in
// input order. Beacons map to nodes through a seeded, deterministic
// virtual-node ring (ring.go), so every observation for one beacon
// lands on the same node and the routed results are bit-identical to a
// single fleet replaying the same stream sequentially — sharding
// across machines is pure transport, exactly like sharding across
// goroutines inside one fleet.
//
// Membership change is first-class. Drain(node) checkpoints every
// session resident on that node through its checkpoint store and
// removes the node from the ring; because the nodes share one durable
// store, the drained beacons re-admit on the surviving nodes by
// restoring those checkpoints bit-exactly — a planned handoff loses
// zero acknowledged fixes. A node that dies without draining trips its
// per-node circuit breaker (resilience.Breaker): its key range fails
// over clockwise to the surviving nodes, and the affected results are
// typed Degraded (the failover node may lack the dead node's undrained
// session state) rather than errors — traffic keeps flowing.
package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"locble/internal/fleet"
	"locble/internal/netproto"
	"locble/internal/resilience"
)

// Errors.
var (
	// ErrClosed is returned by PushBatch and Drain after Close.
	ErrClosed = errors.New("router: closed")
	// ErrNoNodes is a beacon group's result error when every node is
	// drained, dead, or already tried — there is nowhere left to fail
	// over to.
	ErrNoNodes = errors.New("router: no usable nodes")
)

// ReasonNodeFailover marks a Degraded result: the beacon's home node is
// dead (breaker open or the exchange failed), so a surviving node
// served it instead. The observations landed and fixes flowed, but any
// session state the dead node had not checkpointed is unavailable to
// the failover node — fixes may differ from an uninterrupted session
// until the next checkpoint cycle.
const ReasonNodeFailover = "node-failover"

// Config configures a Router.
type Config struct {
	// VNodes is the number of virtual ring points per node (default 64).
	// More vnodes spread a membership change more evenly at the cost of
	// a larger ring.
	VNodes int
	// Seed salts the ring hash. Routers sharing addrs, VNodes and Seed
	// agree on every beacon's owner — keep it fixed across the gateways
	// of one deployment. The default 0 is itself deterministic.
	Seed uint64
	// Breaker tunes the per-node circuit breaker. Zero fields take
	// router defaults (window 6, min samples 2, 50% failure rate): a
	// couple of failed exchanges open the breaker, and its half-open
	// probes re-admit the node when it answers again.
	Breaker resilience.BreakerConfig
	// Codec selects the wire codec negotiated with each node: ""
	// (default) offers the binary codec and falls back to JSON against
	// nodes that don't speak it, netproto.CodecJSON pins plain JSON (no
	// hello), netproto.CodecBinary requires binary (exchanges fail
	// against a JSON-only node). Mixed fleets are fine — the codec is
	// per-connection and changes nothing about the results.
	Codec string
	// PushWindow bounds the pipelined in-flight exchanges per node
	// connection (default netproto.DefaultPushWindow).
	PushWindow int
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Breaker.Window == 0 {
		c.Breaker.Window = 6
	}
	if c.Breaker.MinSamples == 0 {
		c.Breaker.MinSamples = 2
	}
	return c
}

// Result is one beacon's merged outcome of a routed PushBatch, in
// first-appearance order of the input batch. The lifecycle flags and
// fixes mirror the serving node's netproto result.
type Result struct {
	Beacon string
	// Node is the address of the node that served this beacon's group.
	Node string
	// Created / Restored / Quarantined are the session lifecycle flags
	// reported by the serving node (see fleet.Result).
	Created     bool
	Restored    bool
	Quarantined bool
	// Degraded marks a group served by a non-home node because its home
	// node is dead (DegradedReason says why — currently always
	// ReasonNodeFailover). Degraded results are successes: observations
	// landed and fixes flowed, but bit-exact continuity with the dead
	// node's unreachable session state is not guaranteed.
	Degraded       bool
	DegradedReason string
	// Fixes are the location fixes this batch completed on the serving
	// node, bit-identical to a local session (JSON carries float64
	// exactly).
	Fixes []netproto.PushFix
	// Err is this beacon's failure: ErrNoNodes, the batch context's
	// error, or a per-beacon ingest error from the serving node. The
	// rest of the batch still ran.
	Err error
}

// NodeStatus is one node's membership view for operators and tests.
type NodeStatus struct {
	Addr string
	// State is "up", "probing" (breaker half-open), "down" (breaker
	// open), or "drained" (removed from the ring by Drain).
	State string
	// Sessions drained from this node (nonzero only after Drain).
	Drained int
}

// node is one fleet server in the router's table. Its index is stable
// for the router's lifetime; membership changes toggle flags and
// rebuild the ring rather than re-indexing.
type node struct {
	idx  int
	addr string
	be   Backend
	br   *resilience.Breaker

	draining atomic.Bool
	drained  atomic.Int64
}

// Router fans batched fleet ingest over N nodes. All methods are safe
// for concurrent use.
type Router struct {
	cfg Config
	met *metrics

	nodes []*node

	mu     sync.Mutex
	ring   ring // immutable snapshot; rebuilt on membership change
	closed bool
}

// New builds a router over netproto fleet servers at addrs. Connections
// are dialed lazily on first use — negotiating cfg.Codec and then kept
// open across batches — so nodes may come up after the router.
// Addresses must be distinct — they are the ring identities.
func New(addrs []string, cfg Config) (*Router, error) {
	dialCfg := netproto.FleetDialConfig{Codec: cfg.Codec, Window: cfg.PushWindow}
	dials := make([]*dialBackend, len(addrs))
	backends := make([]Backend, len(addrs))
	for i, a := range addrs {
		dials[i] = newDialBackend(a, dialCfg)
		backends[i] = dials[i]
	}
	r, err := newWithBackends(addrs, backends, cfg)
	if err != nil {
		return nil, err
	}
	for _, db := range dials {
		db.reconnects = r.met.reconnects
	}
	return r, nil
}

// newWithBackends is New with explicit transports (tests inject fakes).
func newWithBackends(addrs []string, backends []Backend, cfg Config) (*Router, error) {
	if len(addrs) == 0 {
		return nil, errors.New("router: no node addresses")
	}
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if a == "" {
			return nil, errors.New("router: empty node address")
		}
		if seen[a] {
			return nil, fmt.Errorf("router: duplicate node address %q", a)
		}
		seen[a] = true
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:   cfg,
		met:   newMetrics(len(addrs)),
		nodes: make([]*node, len(addrs)),
	}
	members := make(map[int]string, len(addrs))
	for i, a := range addrs {
		r.nodes[i] = &node{idx: i, addr: a, be: backends[i], br: resilience.NewBreaker(cfg.Breaker)}
		members[i] = a
	}
	r.ring = buildRing(members, cfg.VNodes, cfg.Seed)
	r.met.ringNodes.Set(int64(len(addrs)))
	return r, nil
}

// pending is one beacon group awaiting (re)assignment: its result slot,
// ring position, and the nodes that already failed it this batch.
type pending struct {
	gi    int
	hash  uint64
	tried map[int]bool
}

// PushBatch routes a mixed observation batch to its nodes, pushes the
// per-node sub-batches in parallel, and merges one Result per distinct
// beacon in first-appearance order — the same contract as
// fleet.PushBatch, across machines. Groups whose home node fails are
// retried on the next surviving ring node with Degraded set; only a
// batch against a closed router errors as a whole.
func (r *Router) PushBatch(ctx context.Context, batch []fleet.Obs) ([]Result, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	rg := r.ring
	r.mu.Unlock()

	sp := r.met.pushSpan.Start()
	defer sp.End()
	r.met.batches.Inc()
	r.met.batchSize.Observe(float64(len(batch)))
	r.met.obsRouted.Add(int64(len(batch)))

	// Group by beacon, preserving first-appearance order between groups
	// and input order within each (the fleet's own grouping rule, so a
	// routed batch decomposes exactly like a local one).
	idx := make(map[string]int, 16)
	results := make([]Result, 0, 16)
	groupObs := make([][]netproto.PushObs, 0, 16)
	for _, o := range batch {
		g, ok := idx[o.Beacon]
		if !ok {
			g = len(results)
			idx[o.Beacon] = g
			results = append(results, Result{Beacon: o.Beacon})
			groupObs = append(groupObs, nil)
		}
		groupObs[g] = append(groupObs[g], netproto.PushObs{Beacon: o.Beacon, T: o.T, RSS: o.RSS, P: o.P, Q: o.Q})
	}

	round := make([]*pending, len(results))
	for g := range results {
		round[g] = &pending{gi: g, hash: ringHash(r.cfg.Seed, results[g].Beacon, -1)}
	}
	// Assignment/execution rounds: round 1 sends every group to its home
	// node; groups whose exchange failed re-enter with that node
	// excluded and fail over clockwise. At most len(nodes) rounds.
	for len(round) > 0 {
		plan := make(map[int][]*pending)
		for _, p := range round {
			ni, skipped := r.pick(rg, p.hash, p.tried)
			if ni < 0 {
				if results[p.gi].Err == nil {
					results[p.gi].Err = ErrNoNodes
				}
				continue
			}
			if (skipped || len(p.tried) > 0) && !results[p.gi].Degraded {
				results[p.gi].Degraded = true
				results[p.gi].DegradedReason = ReasonNodeFailover
				r.met.failoverGroups.Inc()
			}
			plan[ni] = append(plan[ni], p)
		}
		if len(plan) == 0 {
			break
		}
		var (
			wg     sync.WaitGroup
			nextMu sync.Mutex
			next   []*pending
		)
		for ni, ps := range plan {
			wg.Add(1)
			go func(ni int, ps []*pending) {
				defer wg.Done()
				failed := r.pushNode(ctx, ni, ps, groupObs, results)
				if len(failed) > 0 {
					nextMu.Lock()
					next = append(next, failed...)
					nextMu.Unlock()
				}
			}(ni, ps)
		}
		wg.Wait()
		round = next
	}
	return results, nil
}

// pushNode sends one node its share of a batch and fills the result
// slots (disjoint across nodes, so no locking). It returns the groups
// to fail over after an exchange-level failure; a canceled context
// reports the context error instead of blaming the node.
func (r *Router) pushNode(ctx context.Context, ni int, ps []*pending, groupObs [][]netproto.PushObs, results []Result) []*pending {
	n := r.nodes[ni]
	wire := make([]netproto.PushObs, 0, 64)
	for _, p := range ps {
		wire = append(wire, groupObs[p.gi]...)
	}
	nm := &r.met.node[ni]
	nm.batches.Inc()
	nm.obsSent.Add(int64(len(wire)))
	nsp := nm.pushSpan.Start()
	res, err := n.be.Push(ctx, wire)
	nsp.End()
	if err != nil {
		if ctx.Err() != nil {
			// The caller gave up, the node did nothing wrong: report the
			// context error and leave the breaker alone.
			for _, p := range ps {
				if results[p.gi].Err == nil {
					results[p.gi].Err = ctx.Err()
				}
			}
			return nil
		}
		n.br.RecordFailure()
		r.met.nodeErrors.Inc()
		for _, p := range ps {
			if p.tried == nil {
				p.tried = make(map[int]bool, 2)
			}
			p.tried[ni] = true
		}
		return ps
	}
	n.br.RecordSuccess()
	byName := make(map[string]*netproto.PushResult, len(res))
	for i := range res {
		byName[res[i].Beacon] = &res[i]
	}
	for _, p := range ps {
		out := &results[p.gi]
		pr := byName[out.Beacon]
		if pr == nil {
			// The node answered but not for this beacon — a protocol
			// breach, surfaced per beacon rather than failed over (the
			// node is alive; re-sending elsewhere would double-ingest
			// any observations it did land).
			out.Err = fmt.Errorf("router: node %s returned no result for %q", n.addr, out.Beacon)
			continue
		}
		out.Node = n.addr
		out.Created = pr.Created
		out.Restored = pr.Restored
		out.Quarantined = pr.Quarantined
		out.Fixes = pr.Fixes
		if pr.Err != "" {
			out.Err = fmt.Errorf("router: node %s: %s", n.addr, pr.Err)
		}
	}
	return nil
}

// pick walks the ring clockwise from a key hash and returns the first
// usable node: in the ring, not being drained, not already tried this
// batch, and admitted by its breaker. skipped reports whether a live
// candidate was passed over because it is dead or already failed —
// i.e. whether serving at the returned node is a failover rather than
// a handoff (drained nodes left the ring; landing on their successor
// is the planned topology, not degradation).
func (r *Router) pick(rg ring, h uint64, tried map[int]bool) (ni int, skipped bool) {
	ni = -1
	rg.walk(h, func(cand int) bool {
		n := r.nodes[cand]
		if n.draining.Load() {
			// A stale ring snapshot can still carry a node that started
			// draining after the snapshot; passing it over is the
			// planned handoff, not a failure.
			return true
		}
		if tried[cand] {
			skipped = true
			return true
		}
		if err := n.br.Allow(); err != nil {
			skipped = true
			return true
		}
		ni = cand
		return false
	})
	return ni, skipped
}

// Drain performs a planned membership change: the node leaves the ring
// (no new batches route to it), then checkpoints every resident session
// through its store, so the drained beacons restore bit-exactly on
// whichever surviving node their key now maps to. Returns how many
// sessions the node drained. The node's backend stays open — a drained
// node can be re-admitted in a future deployment by building a new
// router over it.
func (r *Router) Drain(ctx context.Context, addr string) (int, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, ErrClosed
	}
	var n *node
	for _, c := range r.nodes {
		if c.addr == addr {
			n = c
			break
		}
	}
	if n == nil {
		r.mu.Unlock()
		return 0, fmt.Errorf("router: unknown node %q", addr)
	}
	if n.draining.Load() {
		r.mu.Unlock()
		return 0, fmt.Errorf("router: node %q already drained", addr)
	}
	n.draining.Store(true)
	r.rebuildRingLocked()
	r.mu.Unlock()

	r.met.drains.Inc()
	count, err := n.be.Drain(ctx)
	n.drained.Add(int64(count))
	r.met.drainedSessions.Add(int64(count))
	if err != nil {
		// The node is out of the ring regardless — its beacons must not
		// keep landing on a node that failed to drain — but undrained
		// sessions mean un-checkpointed state, so surface it loudly.
		return count, fmt.Errorf("router: drain %s: %w", addr, err)
	}
	return count, nil
}

// rebuildRingLocked recomputes the ring over the non-draining nodes and
// records the churn. Callers hold r.mu.
func (r *Router) rebuildRingLocked() {
	members := make(map[int]string, len(r.nodes))
	for _, n := range r.nodes {
		if !n.draining.Load() {
			members[n.idx] = n.addr
		}
	}
	r.ring = buildRing(members, r.cfg.VNodes, r.cfg.Seed)
	r.met.ringNodes.Set(int64(len(members)))
	r.met.ringChurn.Inc()
	r.met.rebalanceVNodes.Add(int64(r.cfg.VNodes))
}

// Nodes reports every configured node's membership state, in the order
// the addresses were given.
func (r *Router) Nodes() []NodeStatus {
	out := make([]NodeStatus, len(r.nodes))
	for i, n := range r.nodes {
		st := NodeStatus{Addr: n.addr, Drained: int(n.drained.Load())}
		switch {
		case n.draining.Load():
			st.State = "drained"
		default:
			switch n.br.State() {
			case resilience.Open:
				st.State = "down"
			case resilience.HalfOpen:
				st.State = "probing"
			default:
				st.State = "up"
			}
		}
		out[i] = st
	}
	return out
}

// Close releases every node connection. Idempotent; PushBatch and Drain
// return ErrClosed afterwards.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	errs := make([]error, 0, len(r.nodes))
	for _, n := range r.nodes {
		if err := n.be.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
