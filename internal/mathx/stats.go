package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Skewness returns the standardized third moment of xs. A flat or
// degenerate sample returns 0.
func Skewness(xs []float64) float64 {
	if len(xs) < 3 {
		return 0
	}
	mu := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		d := (x - mu) / sd
		s += d * d * d
	}
	return s / float64(len(xs))
}

// Min returns the minimum of xs; NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (the same convention as numpy's
// default). It returns NaN for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for an already ascending-sorted slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Standardize returns (xs − mean) / std elementwise. If the standard
// deviation is zero the centered values are returned unscaled.
func Standardize(xs []float64) []float64 {
	mu := Mean(xs)
	sd := StdDev(xs)
	out := make([]float64, len(xs))
	for i, x := range xs {
		if sd == 0 {
			out[i] = x - mu
		} else {
			out[i] = (x - mu) / sd
		}
	}
	return out
}

// RMSE returns the root-mean-square error between a and b, which must have
// equal length.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	ss := 0.0
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(a)))
}

// CDF computes the empirical CDF of errs evaluated at each value in at,
// returning P(err ≤ at[i]).
func CDF(errs []float64, at []float64) []float64 {
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	out := make([]float64, len(at))
	for i, a := range at {
		out[i] = float64(sort.SearchFloat64s(sorted, math.Nextafter(a, math.Inf(1)))) / float64(len(sorted))
	}
	return out
}

// NormalPDF is the density of N(mu, sigma²) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF is the cumulative distribution of N(mu, sigma²) at x.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-mu)/(sigma*math.Sqrt2)))
}

// TwoSidedTailProb returns P(|Z| ≥ |x−mu|/sigma) for Z ~ N(0,1): the
// probability mass at least as extreme as x under N(mu, sigma²). The paper
// uses this as the estimation confidence P(µ) (Sec. 5, "Estimation
// confidence"): residual means near zero score close to 1, biased
// residuals score near 0.
func TwoSidedTailProb(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x == mu {
			return 1
		}
		return 0
	}
	z := math.Abs(x-mu) / sigma
	return math.Erfc(z / math.Sqrt2)
}

// Lerp linearly interpolates between a and b at fraction t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// Interp1 linearly interpolates the sampled function (xs, ys) at x. The xs
// must be strictly ascending. Values outside the range clamp to the
// endpoints.
func Interp1(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 || len(ys) != n {
		return math.NaN()
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	i := sort.SearchFloat64s(xs, x)
	// xs[i-1] < x <= xs[i]
	t := (x - xs[i-1]) / (xs[i] - xs[i-1])
	return Lerp(ys[i-1], ys[i], t)
}

// Resample linearly re-samples the series (xs, ys) at the given query
// points.
func Resample(xs, ys, at []float64) []float64 {
	out := make([]float64, len(at))
	for i, x := range at {
		out[i] = Interp1(xs, ys, x)
	}
	return out
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
