package mathx

import (
	"fmt"
	"math"
)

// QR computes the thin QR decomposition of an m×n matrix (m ≥ n) using
// Householder reflections: A = Q·R with Q m×n orthonormal and R n×n upper
// triangular. Solving least squares through QR avoids forming the normal
// equations, whose condition number is the square of A's.
func QR(a *Matrix) (q, r *Matrix, err error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, nil, fmt.Errorf("%w: QR needs rows ≥ cols (%dx%d)", ErrShape, m, n)
	}
	// Work on a copy; accumulate the reflectors' action on an identity to
	// build the thin Q.
	rw := a.Clone()
	// qAcc starts as the m×m identity applied lazily: instead, store the
	// reflector vectors and apply them to I's first n columns at the end.
	type reflector struct {
		v    []float64 // Householder vector (length m−k)
		beta float64
		k    int
	}
	var refs []reflector

	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		normX := 0.0
		for i := k; i < m; i++ {
			v := rw.At(i, k)
			normX += v * v
		}
		normX = math.Sqrt(normX)
		if normX < 1e-300 {
			return nil, nil, ErrSingular
		}
		alpha := -math.Copysign(normX, rw.At(k, k))
		v := make([]float64, m-k)
		v[0] = rw.At(k, k) - alpha
		for i := k + 1; i < m; i++ {
			v[i-k] = rw.At(i, k)
		}
		vNorm2 := 0.0
		for _, vi := range v {
			vNorm2 += vi * vi
		}
		if vNorm2 < 1e-300 {
			// Column already triangular; record a no-op.
			refs = append(refs, reflector{v: nil, k: k})
			continue
		}
		beta := 2 / vNorm2
		refs = append(refs, reflector{v: v, beta: beta, k: k})
		// Apply H = I − β·v·vᵀ to the remaining columns of R.
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i-k] * rw.At(i, j)
			}
			dot *= beta
			for i := k; i < m; i++ {
				rw.Set(i, j, rw.At(i, j)-dot*v[i-k])
			}
		}
	}

	// R is the top n×n of rw.
	r = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, rw.At(i, j))
		}
	}
	// Thin Q: apply the reflectors in reverse to the first n columns of I.
	q = NewMatrix(m, n)
	for j := 0; j < n; j++ {
		col := make([]float64, m)
		col[j] = 1
		for ri := len(refs) - 1; ri >= 0; ri-- {
			rf := refs[ri]
			if rf.v == nil {
				continue
			}
			dot := 0.0
			for i := rf.k; i < m; i++ {
				dot += rf.v[i-rf.k] * col[i]
			}
			dot *= rf.beta
			for i := rf.k; i < m; i++ {
				col[i] -= dot * rf.v[i-rf.k]
			}
		}
		for i := 0; i < m; i++ {
			q.Set(i, j, col[i])
		}
	}
	return q, r, nil
}

// LeastSquaresQR solves X·p ≈ y via QR: R·p = Qᵀ·y. It is numerically
// preferable to the normal equations for ill-conditioned design matrices;
// LeastSquares falls back to it when the normal matrix is near singular.
func LeastSquaresQR(x *Matrix, y []float64) ([]float64, error) {
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("%w: X has %d rows, y has %d", ErrShape, x.Rows(), len(y))
	}
	q, r, err := QR(x)
	if err != nil {
		return nil, err
	}
	n := x.Cols()
	// qty = Qᵀ·y.
	qty := make([]float64, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < x.Rows(); i++ {
			s += q.At(i, j) * y[i]
		}
		qty[j] = s
	}
	// Back substitution on R.
	p := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := qty[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * p[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-12 {
			return nil, ErrSingular
		}
		p[i] = s / d
	}
	return p, nil
}
