// Package mathx provides the small dense linear-algebra and statistics
// substrate used by the LocBLE estimators: matrices, least-squares solvers,
// descriptive statistics, quantiles, and Gaussian distribution helpers.
//
// The package is deliberately minimal — only the operations the paper's
// algorithms need — and uses no dependencies beyond the standard library.
package mathx

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular matrix")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mathx: dimension mismatch")

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero-valued rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mathx: invalid matrix size %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices. All rows must have the
// same length.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty rows", ErrShape)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrShape, i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:], r)
	}
	return m, nil
}

// NewColumn builds a column vector (n×1 matrix) from v.
func NewColumn(v []float64) *Matrix {
	m := NewMatrix(len(v), 1)
	copy(m.data, v)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mathx: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mv := range mi {
			if mv == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range bk {
				oi[j] += mv * bv
			}
		}
	}
	return out, nil
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// Sub returns m − b.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d - %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out, nil
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.6g", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// Solve solves A·x = b for x using Gaussian elimination with partial
// pivoting. A must be square; b must have the same number of rows.
func Solve(a, b *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: A is %dx%d, want square", ErrShape, a.rows, a.cols)
	}
	if b.rows != a.rows {
		return nil, fmt.Errorf("%w: b has %d rows, want %d", ErrShape, b.rows, a.rows)
	}
	n := a.rows
	// Augmented working copies.
	aw := a.Clone()
	bw := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest |value| in this column.
		pivot := col
		maxAbs := math.Abs(aw.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(aw.At(r, col)); abs > maxAbs {
				maxAbs = abs
				pivot = r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			aw.swapRows(pivot, col)
			bw.swapRows(pivot, col)
		}
		pv := aw.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aw.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				aw.Set(r, c, aw.At(r, c)-f*aw.At(col, c))
			}
			for c := 0; c < bw.cols; c++ {
				bw.Set(r, c, bw.At(r, c)-f*bw.At(col, c))
			}
		}
	}
	// Back substitution.
	x := NewMatrix(n, bw.cols)
	for c := 0; c < bw.cols; c++ {
		for i := n - 1; i >= 0; i-- {
			sum := bw.At(i, c)
			for j := i + 1; j < n; j++ {
				sum -= aw.At(i, j) * x.At(j, c)
			}
			x.Set(i, c, sum/aw.At(i, i))
		}
	}
	return x, nil
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Inverse returns the inverse of a square matrix.
func Inverse(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: %dx%d, want square", ErrShape, a.rows, a.cols)
	}
	return Solve(a, Identity(a.rows))
}

// LeastSquares solves the overdetermined system X·p ≈ y in the
// least-squares sense via the normal equations p = (XᵀX)⁻¹Xᵀy, matching
// Eq. (4) of the paper. A small Tikhonov ridge is added when the normal
// matrix is near singular so that degenerate movement patterns (e.g. the
// observer standing still) return a usable, if imprecise, estimate instead
// of failing outright.
func LeastSquares(x *Matrix, y []float64) ([]float64, error) {
	if x.rows != len(y) {
		return nil, fmt.Errorf("%w: X has %d rows, y has %d", ErrShape, x.rows, len(y))
	}
	if x.rows < x.cols {
		return nil, fmt.Errorf("%w: %d observations for %d parameters", ErrShape, x.rows, x.cols)
	}
	xt := x.T()
	xtx, err := xt.Mul(x)
	if err != nil {
		return nil, err
	}
	xty, err := xt.Mul(NewColumn(y))
	if err != nil {
		return nil, err
	}
	sol, err := Solve(xtx, xty)
	if errors.Is(err, ErrSingular) {
		// QR fallback: avoids the normal equations' squared condition
		// number; if the design matrix itself is rank deficient, a small
		// Tikhonov ridge gives a usable (if imprecise) answer.
		if p, qErr := LeastSquaresQR(x, y); qErr == nil {
			return p, nil
		}
		tr := 0.0
		for i := 0; i < xtx.rows; i++ {
			tr += xtx.At(i, i)
		}
		lambda := 1e-8 * (tr/float64(xtx.rows) + 1)
		reg := xtx.Clone()
		for i := 0; i < reg.rows; i++ {
			reg.Set(i, i, reg.At(i, i)+lambda)
		}
		sol, err = Solve(reg, xty)
	}
	if err != nil {
		return nil, err
	}
	return sol.Col(0), nil
}

// WeightedLeastSquares solves X·p ≈ y with per-observation weights w ≥ 0.
func WeightedLeastSquares(x *Matrix, y, w []float64) ([]float64, error) {
	if x.rows != len(y) || x.rows != len(w) {
		return nil, fmt.Errorf("%w: X rows %d, y %d, w %d", ErrShape, x.rows, len(y), len(w))
	}
	xw := x.Clone()
	yw := make([]float64, len(y))
	for i := 0; i < x.rows; i++ {
		s := math.Sqrt(math.Max(w[i], 0))
		for j := 0; j < x.cols; j++ {
			xw.Set(i, j, xw.At(i, j)*s)
		}
		yw[i] = y[i] * s
	}
	return LeastSquares(xw, yw)
}
