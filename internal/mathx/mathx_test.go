package mathx

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Errorf("At(1,2) = %g", m.At(1, 2))
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone aliases the original")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %g", m.At(1, 0))
	}
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("want error for ragged rows")
	}
	if _, err := NewMatrixFromRows(nil); err == nil {
		t.Error("want error for empty input")
	}
}

func TestMatrixTranspose(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T shape = %dx%d", mt.Rows(), mt.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Errorf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul(%d,%d) = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
}

func TestMatrixAddSubScale(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}})
	b, _ := NewMatrixFromRows([][]float64{{10, 20}})
	sum, _ := a.Add(b)
	if sum.At(0, 1) != 22 {
		t.Errorf("Add = %g", sum.At(0, 1))
	}
	diff, _ := b.Sub(a)
	if diff.At(0, 0) != 9 {
		t.Errorf("Sub = %g", diff.At(0, 0))
	}
	sc := a.Scale(3)
	if sc.At(0, 1) != 6 {
		t.Errorf("Scale = %g", sc.At(0, 1))
	}
	if _, err := a.Add(NewMatrix(2, 2)); !errors.Is(err, ErrShape) {
		t.Error("want ErrShape for Add")
	}
	if _, err := a.Sub(NewMatrix(2, 2)); !errors.Is(err, ErrShape) {
		t.Error("want ErrShape for Sub")
	}
}

func TestSolve(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{3, 2, -1}, {2, -2, 4}, {-1, 0.5, -1}})
	b := NewColumn([]float64{1, -2, 0})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, -2}
	for i, w := range want {
		if !almostEqual(x.At(i, 0), w, 1e-9) {
			t.Errorf("x[%d] = %g, want %g", i, x.At(i, 0), w)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	b := NewColumn([]float64{1, 2})
	if _, err := Solve(a, b); !errors.Is(err, ErrSingular) {
		t.Errorf("want ErrSingular, got %v", err)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a, _ := NewMatrixFromRows([][]float64{{0, 1}, {1, 0}})
	b := NewColumn([]float64{2, 3})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x.At(0, 0), 3, 1e-12) || !almostEqual(x.At(1, 0), 2, 1e-12) {
		t.Errorf("x = (%g, %g), want (3, 2)", x.At(0, 0), x.At(1, 0))
	}
}

func TestInverse(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(prod.At(i, j), want, 1e-9) {
				t.Errorf("A·A⁻¹(%d,%d) = %g", i, j, prod.At(i, j))
			}
		}
	}
}

func TestLeastSquaresRecoversLine(t *testing.T) {
	x := NewMatrix(10, 2)
	y := make([]float64, 10)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, float64(i))
		x.Set(i, 1, 1)
		y[i] = 2.5*float64(i) - 7
	}
	p, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p[0], 2.5, 1e-9) || !almostEqual(p[1], -7, 1e-9) {
		t.Errorf("p = %v, want (2.5, -7)", p)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	x := NewMatrix(2, 3)
	if _, err := LeastSquares(x, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Error("want ErrShape for underdetermined system")
	}
	if _, err := LeastSquares(NewMatrix(3, 2), []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Error("want ErrShape for length mismatch")
	}
}

func TestWeightedLeastSquares(t *testing.T) {
	// Two clusters of points at different values; the heavy-weight
	// cluster should dominate the constant fit.
	x := NewMatrix(4, 1)
	for i := 0; i < 4; i++ {
		x.Set(i, 0, 1)
	}
	y := []float64{0, 0, 10, 10}
	w := []float64{1, 1, 9, 9}
	p, err := WeightedLeastSquares(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] < 8 {
		t.Errorf("weighted mean = %g, want near 9", p[0])
	}
}

func TestStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEqual(Mean(xs), 5, 1e-12) {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if !almostEqual(Variance(xs), 4, 1e-12) {
		t.Errorf("Variance = %g", Variance(xs))
	}
	if !almostEqual(StdDev(xs), 2, 1e-12) {
		t.Errorf("StdDev = %g", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
}

func TestSkewness(t *testing.T) {
	sym := []float64{1, 2, 3, 4, 5}
	if math.Abs(Skewness(sym)) > 1e-12 {
		t.Errorf("symmetric skewness = %g", Skewness(sym))
	}
	right := []float64{1, 1, 1, 1, 10}
	if Skewness(right) <= 0 {
		t.Errorf("right-tailed skewness = %g, want > 0", Skewness(right))
	}
	if Skewness([]float64{5, 5, 5, 5}) != 0 {
		t.Error("degenerate skewness should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty Quantile should be NaN")
	}
	if Median(xs) != 3 {
		t.Errorf("Median = %g", Median(xs))
	}
}

func TestStandardize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	z := Standardize(xs)
	if !almostEqual(Mean(z), 0, 1e-12) {
		t.Errorf("standardized mean = %g", Mean(z))
	}
	if !almostEqual(StdDev(z), 1, 1e-12) {
		t.Errorf("standardized std = %g", StdDev(z))
	}
	flat := Standardize([]float64{7, 7, 7})
	for _, v := range flat {
		if v != 0 {
			t.Errorf("flat standardize = %v", flat)
		}
	}
}

func TestRMSEAndCDF(t *testing.T) {
	if !almostEqual(RMSE([]float64{0, 0}, []float64{3, 4}), math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %g", RMSE([]float64{0, 0}, []float64{3, 4}))
	}
	if !math.IsNaN(RMSE([]float64{1}, []float64{1, 2})) {
		t.Error("length-mismatched RMSE should be NaN")
	}
	cdf := CDF([]float64{1, 2, 3, 4}, []float64{0, 2, 5})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(cdf[i], want[i], 1e-12) {
			t.Errorf("CDF[%d] = %g, want %g", i, cdf[i], want[i])
		}
	}
}

func TestNormalDistribution(t *testing.T) {
	if !almostEqual(NormalCDF(0, 0, 1), 0.5, 1e-12) {
		t.Errorf("Φ(0) = %g", NormalCDF(0, 0, 1))
	}
	if !almostEqual(NormalCDF(1.96, 0, 1), 0.975, 1e-3) {
		t.Errorf("Φ(1.96) = %g", NormalCDF(1.96, 0, 1))
	}
	if !almostEqual(NormalPDF(0, 0, 1), 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Errorf("φ(0) = %g", NormalPDF(0, 0, 1))
	}
	if NormalPDF(0, 0, -1) != 0 {
		t.Error("negative sigma PDF should be 0")
	}
	// Degenerate CDF is a step function.
	if NormalCDF(-1, 0, 0) != 0 || NormalCDF(1, 0, 0) != 1 {
		t.Error("degenerate CDF should step at mu")
	}
}

func TestTwoSidedTailProb(t *testing.T) {
	if !almostEqual(TwoSidedTailProb(0, 0, 1), 1, 1e-12) {
		t.Errorf("tail at mean = %g", TwoSidedTailProb(0, 0, 1))
	}
	p := TwoSidedTailProb(1.96, 0, 1)
	if !almostEqual(p, 0.05, 2e-3) {
		t.Errorf("tail at 1.96σ = %g, want ≈0.05", p)
	}
	if TwoSidedTailProb(1, 0, 0) != 0 || TwoSidedTailProb(0, 0, 0) != 1 {
		t.Error("degenerate tail prob")
	}
}

func TestInterp1AndResample(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 10, 20}
	if !almostEqual(Interp1(xs, ys, 0.5), 5, 1e-12) {
		t.Errorf("Interp1(0.5) = %g", Interp1(xs, ys, 0.5))
	}
	if Interp1(xs, ys, -1) != 0 || Interp1(xs, ys, 5) != 20 {
		t.Error("out-of-range interp should clamp")
	}
	if !math.IsNaN(Interp1(nil, nil, 0)) {
		t.Error("empty interp should be NaN")
	}
	rs := Resample(xs, ys, []float64{0.25, 1.75})
	if !almostEqual(rs[0], 2.5, 1e-12) || !almostEqual(rs[1], 17.5, 1e-12) {
		t.Errorf("Resample = %v", rs)
	}
}

func TestClampAndLerp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp broken")
	}
	if Lerp(0, 10, 0.3) != 3 {
		t.Errorf("Lerp = %g", Lerp(0, 10, 0.3))
	}
}

// Property: Solve returns x with A·x = b for random well-conditioned
// systems.
func TestPropertySolveResidual(t *testing.T) {
	f := func(seed uint8) bool {
		n := 3 + int(seed%3)
		a := NewMatrix(n, n)
		b := NewColumn(make([]float64, n))
		// Diagonally dominant matrix from a cheap PRNG: always solvable.
		s := uint32(seed) + 1
		next := func() float64 {
			s = s*1664525 + 1013904223
			return float64(s%1000)/500 - 1
		}
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				v := next()
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			a.Set(i, i, rowSum+1)
			b.Set(i, 0, next()*10)
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax, _ := a.Mul(x)
		for i := 0; i < n; i++ {
			if math.Abs(ax.At(i, 0)-b.At(i, 0)) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			if v < Min(xs)-1e-12 || v > Max(xs)+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQRDecomposition(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{1, 2}, {3, 4}, {5, 6}, {7, 9},
	})
	q, r, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	// Q orthonormal: QᵀQ = I.
	qtq, _ := q.T().Mul(q)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(qtq.At(i, j), want, 1e-10) {
				t.Errorf("QᵀQ[%d][%d] = %g", i, j, qtq.At(i, j))
			}
		}
	}
	// R upper triangular and QR = A.
	if math.Abs(r.At(1, 0)) > 1e-12 {
		t.Errorf("R not triangular: %g", r.At(1, 0))
	}
	qr, _ := q.Mul(r)
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if !almostEqual(qr.At(i, j), a.At(i, j), 1e-10) {
				t.Errorf("QR[%d][%d] = %g, want %g", i, j, qr.At(i, j), a.At(i, j))
			}
		}
	}
}

func TestLeastSquaresQRMatchesNormalEquations(t *testing.T) {
	x := NewMatrix(12, 3)
	y := make([]float64, 12)
	s := uint32(5)
	next := func() float64 {
		s = s*1664525 + 1013904223
		return float64(s%1000)/100 - 5
	}
	for i := 0; i < 12; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, next())
		}
		y[i] = next()
	}
	p1, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := LeastSquaresQR(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if !almostEqual(p1[i], p2[i], 1e-8) {
			t.Errorf("p[%d]: normal %g vs QR %g", i, p1[i], p2[i])
		}
	}
}

func TestLeastSquaresQRIllConditioned(t *testing.T) {
	// Vandermonde-ish matrix the normal equations butcher.
	const m, n = 12, 4
	x := NewMatrix(m, n)
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		ti := 1 + float64(i)/1000 // closely spaced abscissas
		v := 1.0
		for j := 0; j < n; j++ {
			x.Set(i, j, v)
			v *= ti
		}
		y[i] = 2 + 3*ti // exact linear function
	}
	p, err := LeastSquaresQR(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Residual must be essentially zero even if the coefficients trade
	// off (the function is representable).
	for i := 0; i < m; i++ {
		pred := 0.0
		for j := 0; j < n; j++ {
			pred += x.At(i, j) * p[j]
		}
		if math.Abs(pred-y[i]) > 1e-6 {
			t.Fatalf("QR residual %g at row %d", pred-y[i], i)
		}
	}
}

func TestQRErrors(t *testing.T) {
	if _, _, err := QR(NewMatrix(2, 3)); err == nil {
		t.Error("want error for wide matrix")
	}
	if _, err := LeastSquaresQR(NewMatrix(3, 2), []float64{1, 2}); err == nil {
		t.Error("want error for shape mismatch")
	}
}
