package mathx_test

import (
	"fmt"

	"locble/internal/mathx"
)

// Least squares via the normal equations — the paper's Eq. (4).
func ExampleLeastSquares() {
	// y = 2x + 1 sampled at x = 0..4.
	x := mathx.NewMatrix(5, 2)
	y := make([]float64, 5)
	for i := 0; i < 5; i++ {
		x.Set(i, 0, float64(i))
		x.Set(i, 1, 1)
		y[i] = 2*float64(i) + 1
	}
	p, _ := mathx.LeastSquares(x, y)
	fmt.Printf("slope %.1f intercept %.1f\n", p[0], p[1])
	// Output:
	// slope 2.0 intercept 1.0
}

func ExampleQuantile() {
	xs := []float64{1, 2, 3, 4, 5}
	fmt.Println(mathx.Quantile(xs, 0.5))
	fmt.Println(mathx.Quantile(xs, 0.25))
	// Output:
	// 3
	// 2
}
