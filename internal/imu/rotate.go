package imu

import "math"

// RotationMatrix is a 3×3 rotation, row-major.
type RotationMatrix [3][3]float64

// IdentityRotation returns the identity rotation.
func IdentityRotation() RotationMatrix {
	return RotationMatrix{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// RotationZYX builds a rotation from yaw (z), pitch (y) and roll (x)
// Euler angles, applied in Z·Y·X order.
func RotationZYX(yaw, pitch, roll float64) RotationMatrix {
	cy, sy := math.Cos(yaw), math.Sin(yaw)
	cp, sp := math.Cos(pitch), math.Sin(pitch)
	cr, sr := math.Cos(roll), math.Sin(roll)
	return RotationMatrix{
		{cy * cp, cy*sp*sr - sy*cr, cy*sp*cr + sy*sr},
		{sy * cp, sy*sp*sr + cy*cr, sy*sp*cr - cy*sr},
		{-sp, cp * sr, cp * cr},
	}
}

// Apply rotates vector v.
func (r RotationMatrix) Apply(v [3]float64) [3]float64 {
	var out [3]float64
	for i := 0; i < 3; i++ {
		out[i] = r[i][0]*v[0] + r[i][1]*v[1] + r[i][2]*v[2]
	}
	return out
}

// Transpose returns the inverse rotation.
func (r RotationMatrix) Transpose() RotationMatrix {
	var out RotationMatrix
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = r[j][i]
		}
	}
	return out
}

// Mul composes rotations: (r·s)(v) = r(s(v)).
func (r RotationMatrix) Mul(s RotationMatrix) RotationMatrix {
	var out RotationMatrix
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				out[i][j] += r[i][k] * s[k][j]
			}
		}
	}
	return out
}

// ApplyPosture rotates every sample of the trace from the earth frame into
// a device frame held at the given posture: deviceVec = Rᵀ · earthVec.
// It models a phone held at an arbitrary orientation; the motion package's
// coordinate alignment must undo it (paper Sec. 5.2, "to make our motion
// tracker independent of phone postures").
func (tr *Trace) ApplyPosture(r RotationMatrix) {
	rt := r.Transpose()
	for i := range tr.Samples {
		s := &tr.Samples[i]
		s.Acc = rt.Apply(s.Acc)
		s.Gyro = rt.Apply(s.Gyro)
		s.Mag = rt.Apply(s.Mag)
	}
}
