// Package imu synthesizes the inertial sensor streams a smartphone
// produces while its user walks: 3-axis accelerometer with per-step
// vertical oscillation, 3-axis gyroscope with turn "bumps", and a
// magnetometer whose heading fluctuates indoors but is accurate over
// short periods (paper Sec. 5.2). The synthesizer also emits the
// ground-truth pose track and step/turn event times, which the motion
// package's detectors are evaluated against (Fig. 8; 94.77 % step
// accuracy, 3.45° angle error).
package imu

import (
	"errors"
	"math"

	"locble/internal/rng"
)

// Gravity is standard gravity in m/s².
const Gravity = 9.80665

// Sample is one IMU reading in the device frame.
type Sample struct {
	T    float64    // seconds since trace start
	Acc  [3]float64 // accelerometer, m/s² (includes gravity)
	Gyro [3]float64 // gyroscope, rad/s
	Mag  [3]float64 // magnetometer, arbitrary units (unit field vector)
}

// Pose is a ground-truth observer pose.
type Pose struct {
	T       float64
	X, Y    float64 // metres, world frame
	Z       float64 // phone height offset from the carry plane, metres
	Heading float64 // radians, 0 = +x axis, CCW positive
	Walking bool
}

// Segment is one leg of a walking plan: turn in place to face Heading,
// then walk Distance metres. Lift raises (or lowers) the phone by that
// many metres over the course of the segment — the app-guided gesture the
// paper's 3-D extension needs (Sec. 9.3: "3-D localization can be done by
// modifying our data fusion and L-shaped movement").
type Segment struct {
	Heading  float64 // absolute heading in radians
	Distance float64 // metres (0 = turn only)
	Lift     float64 // metres of vertical phone movement during the segment
}

// Plan describes a walk to synthesize.
type Plan struct {
	Segments []Segment
	// StepLength in metres (default 0.7).
	StepLength float64
	// StepFreq in steps/second (default 1.8).
	StepFreq float64
	// TurnRate in rad/s while turning in place (default ~60°/s).
	TurnRate float64
	// SampleRate of the IMU in Hz (default 100).
	SampleRate float64
	// StartX, StartY is the starting position in metres.
	StartX, StartY float64
	// StartHeading is the initial facing in radians.
	StartHeading float64
	// LeadIn is standing time before the first segment (default 0.5 s).
	LeadIn float64
}

// LShape returns the paper's canonical measurement movement (Sec. 5.1):
// walk legA metres along heading, turn 90° left, walk legB metres.
func LShape(heading, legA, legB float64) []Segment {
	return []Segment{
		{Heading: heading, Distance: legA},
		{Heading: heading + math.Pi/2, Distance: legB},
	}
}

func (p *Plan) defaults() {
	if p.StepLength <= 0 {
		p.StepLength = 0.7
	}
	if p.StepFreq <= 0 {
		p.StepFreq = 1.8
	}
	if p.TurnRate <= 0 {
		p.TurnRate = math.Pi / 3
	}
	if p.SampleRate <= 0 {
		p.SampleRate = 100
	}
	if p.LeadIn <= 0 {
		p.LeadIn = 0.5
	}
}

// Noise configures sensor imperfections.
type Noise struct {
	AccSigma  float64 // m/s²
	GyroSigma float64 // rad/s
	// MagSigma is white heading noise in radians.
	MagSigma float64
	// MagDriftSigma is the scale of the slowly varying indoor magnetic
	// disturbance in radians (random-walk, paper Sec. 5.2.2 notes the
	// field "fluctuates in indoor environments but is accurate over a
	// short period").
	MagDriftSigma float64
	// GyroBias is a constant rate bias in rad/s.
	GyroBias float64
}

// DefaultNoise returns indoor-smartphone-grade sensor noise.
func DefaultNoise() Noise {
	return Noise{
		AccSigma:      0.25,
		GyroSigma:     0.02,
		MagSigma:      0.035,
		MagDriftSigma: 0.012,
		GyroBias:      0.004,
	}
}

// Event marks a ground-truth gait or turn event.
type Event struct {
	T float64
	// Kind is "step", "turn-begin" or "turn-end".
	Kind string
	// Angle is the signed turn angle in radians for turn-end events.
	Angle float64
}

// Trace is a synthesized IMU recording with ground truth.
type Trace struct {
	Samples []Sample
	Truth   []Pose
	Events  []Event
	// Steps is the ground-truth step count.
	Steps int
	// Duration in seconds.
	Duration float64
}

// phase is an internal timeline element.
type phase struct {
	start, end float64
	kind       string // "stand", "turn", "walk"
	h0, h1     float64
	x0, y0     float64
	x1, y1     float64
	z0, z1     float64
	steps      int
}

// ErrEmptyPlan is returned when the plan has no segments.
var ErrEmptyPlan = errors.New("imu: plan has no segments")

// Synthesize renders the plan to an IMU trace using noise parameters and
// randomness from src.
func Synthesize(p Plan, noise Noise, src *rng.Source) (*Trace, error) {
	p.defaults()
	if len(p.Segments) == 0 {
		return nil, ErrEmptyPlan
	}
	phases := buildTimeline(&p)
	total := phases[len(phases)-1].end

	dt := 1 / p.SampleRate
	n := int(total/dt) + 1
	tr := &Trace{Duration: total}

	magDrift := 0.0
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		ph := phaseAt(phases, t)
		pose := poseAt(ph, t)

		var s Sample
		s.T = t

		// Accelerometer: gravity on z plus gait oscillation while walking.
		s.Acc[2] = Gravity
		if ph.kind == "walk" {
			// Per-step vertical bounce at the step frequency with a
			// second harmonic, plus smaller fore-aft sway.
			w := 2 * math.Pi * p.StepFreq
			tw := t - ph.start
			vert := 1.9*math.Sin(w*tw) + 0.5*math.Sin(2*w*tw)
			s.Acc[2] += vert
			fore := 0.6 * math.Cos(w*tw)
			s.Acc[0] += fore
		}
		for k := 0; k < 3; k++ {
			s.Acc[k] += src.Normal(0, noise.AccSigma)
		}

		// Gyroscope: z-rate during turns (bell-shaped bump).
		if ph.kind == "turn" {
			dur := ph.end - ph.start
			frac := (t - ph.start) / dur
			// Raised-cosine rate profile integrating to (h1−h0).
			rate := (ph.h1 - ph.h0) / dur * (1 - math.Cos(2*math.Pi*frac))
			s.Gyro[2] = rate
		}
		for k := 0; k < 3; k++ {
			s.Gyro[k] += src.Normal(0, noise.GyroSigma)
		}
		s.Gyro[2] += noise.GyroBias

		// Magnetometer: unit north vector rotated into the device frame
		// by the heading, with indoor drift + white noise. We model the
		// horizontal field; heading = atan2(−my, mx).
		magDrift += src.Normal(0, noise.MagDriftSigma*math.Sqrt(dt))
		hNoisy := pose.Heading + magDrift + src.Normal(0, noise.MagSigma)
		s.Mag[0] = math.Cos(hNoisy)
		s.Mag[1] = -math.Sin(hNoisy)
		s.Mag[2] = 0.35 // vertical dip component

		tr.Samples = append(tr.Samples, s)
		tr.Truth = append(tr.Truth, pose)
	}

	// Ground-truth events.
	for _, ph := range phases {
		switch ph.kind {
		case "walk":
			for k := 0; k < ph.steps; k++ {
				tr.Events = append(tr.Events, Event{
					T:    ph.start + (float64(k)+0.25)/p.StepFreq,
					Kind: "step",
				})
				tr.Steps++
			}
		case "turn":
			tr.Events = append(tr.Events,
				Event{T: ph.start, Kind: "turn-begin"},
				Event{T: ph.end, Kind: "turn-end", Angle: ph.h1 - ph.h0},
			)
		}
	}
	return tr, nil
}

func buildTimeline(p *Plan) []phase {
	var phases []phase
	t := 0.0
	x, y, h := p.StartX, p.StartY, p.StartHeading

	z := 0.0
	phases = append(phases, phase{start: t, end: t + p.LeadIn, kind: "stand", h0: h, h1: h, x0: x, y0: y, x1: x, y1: y, z0: z, z1: z})
	t += p.LeadIn

	for _, seg := range p.Segments {
		if d := angleDiff(seg.Heading, h); math.Abs(d) > 1e-9 {
			dur := math.Abs(d) / p.TurnRate
			phases = append(phases, phase{start: t, end: t + dur, kind: "turn", h0: h, h1: h + d, x0: x, y0: y, x1: x, y1: y, z0: z, z1: z})
			t += dur
			h += d
		}
		if seg.Distance > 1e-9 || math.Abs(seg.Lift) > 1e-9 {
			steps := int(math.Round(seg.Distance / p.StepLength))
			if steps < 1 && seg.Distance > 1e-9 {
				steps = 1
			}
			dur := float64(steps) / p.StepFreq
			if steps == 0 {
				// Pure lift gesture: ~1 s per half metre of vertical move.
				dur = math.Max(0.8, 2*math.Abs(seg.Lift))
			}
			x1 := x + seg.Distance*math.Cos(h)
			y1 := y + seg.Distance*math.Sin(h)
			z1 := z + seg.Lift
			kind := "walk"
			if steps == 0 {
				kind = "stand"
			}
			phases = append(phases, phase{start: t, end: t + dur, kind: kind, h0: h, h1: h, x0: x, y0: y, x1: x1, y1: y1, z0: z, z1: z1, steps: steps})
			t += dur
			x, y, z = x1, y1, z1
		}
	}
	// Trailing stand so filters settle.
	phases = append(phases, phase{start: t, end: t + 0.5, kind: "stand", h0: h, h1: h, x0: x, y0: y, x1: x, y1: y, z0: z, z1: z})
	return phases
}

func phaseAt(phases []phase, t float64) *phase {
	for i := range phases {
		if t < phases[i].end {
			return &phases[i]
		}
	}
	return &phases[len(phases)-1]
}

func poseAt(ph *phase, t float64) Pose {
	frac := 0.0
	if ph.end > ph.start {
		frac = (t - ph.start) / (ph.end - ph.start)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
	}
	return Pose{
		T:       t,
		X:       ph.x0 + (ph.x1-ph.x0)*frac,
		Y:       ph.y0 + (ph.y1-ph.y0)*frac,
		Z:       ph.z0 + (ph.z1-ph.z0)*frac,
		Heading: ph.h0 + (ph.h1-ph.h0)*frac,
		Walking: ph.kind == "walk",
	}
}

// angleDiff returns the signed smallest rotation from a to b in (−π, π].
func angleDiff(b, a float64) float64 {
	d := math.Mod(b-a, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// AngleDiff is the exported signed smallest rotation from a to b.
func AngleDiff(b, a float64) float64 { return angleDiff(b, a) }

// HeightAt interpolates the ground-truth phone height offset at time t.
func (tr *Trace) HeightAt(t float64) float64 {
	if len(tr.Truth) == 0 {
		return 0
	}
	if t <= tr.Truth[0].T {
		return tr.Truth[0].Z
	}
	last := tr.Truth[len(tr.Truth)-1]
	if t >= last.T {
		return last.Z
	}
	dt := tr.Truth[1].T - tr.Truth[0].T
	i := int(t / dt)
	if i+1 >= len(tr.Truth) {
		return last.Z
	}
	a, b := tr.Truth[i], tr.Truth[i+1]
	frac := (t - a.T) / dt
	return a.Z + (b.Z-a.Z)*frac
}

// HeadingAt interpolates the ground-truth heading at time t.
func (tr *Trace) HeadingAt(t float64) float64 {
	if len(tr.Truth) == 0 {
		return 0
	}
	if t <= tr.Truth[0].T {
		return tr.Truth[0].Heading
	}
	last := tr.Truth[len(tr.Truth)-1]
	if t >= last.T {
		return last.Heading
	}
	dt := tr.Truth[1].T - tr.Truth[0].T
	i := int(t / dt)
	if i+1 >= len(tr.Truth) {
		return last.Heading
	}
	a, b := tr.Truth[i], tr.Truth[i+1]
	frac := (t - a.T) / dt
	return a.Heading + angleDiff(b.Heading, a.Heading)*frac
}

// PositionAt interpolates the ground-truth position at time t.
func (tr *Trace) PositionAt(t float64) (x, y float64) {
	if len(tr.Truth) == 0 {
		return 0, 0
	}
	if t <= tr.Truth[0].T {
		return tr.Truth[0].X, tr.Truth[0].Y
	}
	last := tr.Truth[len(tr.Truth)-1]
	if t >= last.T {
		return last.X, last.Y
	}
	// Truth is uniformly sampled; index directly.
	dt := tr.Truth[1].T - tr.Truth[0].T
	i := int(t / dt)
	if i+1 >= len(tr.Truth) {
		return last.X, last.Y
	}
	a, b := tr.Truth[i], tr.Truth[i+1]
	frac := (t - a.T) / dt
	return a.X + (b.X-a.X)*frac, a.Y + (b.Y-a.Y)*frac
}

// RandomWaypointPlan builds a walking plan of legs random-waypoint style
// inside a w×h room: each leg heads to a uniformly drawn waypoint. Useful
// for coverage studies and long tracking sessions beyond the canonical
// L-shape.
func RandomWaypointPlan(w, h float64, legs int, src *rng.Source) Plan {
	var segs []Segment
	x, y := w*0.1, h*0.1
	for i := 0; i < legs; i++ {
		nx := src.Uniform(0.1*w, 0.9*w)
		ny := src.Uniform(0.1*h, 0.9*h)
		dx, dy := nx-x, ny-y
		dist := math.Hypot(dx, dy)
		if dist < 0.5 {
			continue
		}
		segs = append(segs, Segment{Heading: math.Atan2(dy, dx), Distance: dist})
		x, y = nx, ny
	}
	if len(segs) == 0 {
		segs = []Segment{{Heading: 0, Distance: math.Max(1, 0.5*w)}}
	}
	return Plan{Segments: segs, StartX: w * 0.1, StartY: h * 0.1}
}
