package imu

import (
	"math"
	"testing"
	"testing/quick"

	"locble/internal/rng"
)

func TestSynthesizeBasics(t *testing.T) {
	plan := Plan{Segments: LShape(0, 4, 4)}
	tr, err := Synthesize(plan, DefaultNoise(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) == 0 || len(tr.Truth) != len(tr.Samples) {
		t.Fatalf("samples %d truth %d", len(tr.Samples), len(tr.Truth))
	}
	// 4 m legs at 0.7 m steps → ~6 steps each.
	if tr.Steps < 10 || tr.Steps > 14 {
		t.Errorf("ground-truth steps = %d, want ≈12", tr.Steps)
	}
	// Final position: (4, 4) from the L-shape.
	x, y := tr.PositionAt(1e9)
	if math.Hypot(x-4, y-4) > 0.3 {
		t.Errorf("final position (%g, %g), want ≈(4, 4)", x, y)
	}
}

func TestSynthesizeEmptyPlan(t *testing.T) {
	if _, err := Synthesize(Plan{}, DefaultNoise(), rng.New(1)); err != ErrEmptyPlan {
		t.Errorf("want ErrEmptyPlan, got %v", err)
	}
}

func TestGravityPresent(t *testing.T) {
	plan := Plan{Segments: []Segment{{Heading: 0, Distance: 3}}}
	tr, _ := Synthesize(plan, Noise{}, rng.New(2))
	var meanZ float64
	for _, s := range tr.Samples {
		meanZ += s.Acc[2]
	}
	meanZ /= float64(len(tr.Samples))
	if math.Abs(meanZ-Gravity) > 0.3 {
		t.Errorf("mean vertical acceleration %g, want ≈g", meanZ)
	}
}

func TestTurnEventsAndGyro(t *testing.T) {
	plan := Plan{Segments: []Segment{
		{Heading: 0, Distance: 2},
		{Heading: math.Pi / 2, Distance: 2},
	}}
	tr, _ := Synthesize(plan, Noise{}, rng.New(3))
	var begin, end *Event
	for i := range tr.Events {
		switch tr.Events[i].Kind {
		case "turn-begin":
			begin = &tr.Events[i]
		case "turn-end":
			end = &tr.Events[i]
		}
	}
	if begin == nil || end == nil {
		t.Fatal("missing turn events")
	}
	if math.Abs(end.Angle-math.Pi/2) > 1e-9 {
		t.Errorf("turn angle %g, want π/2", end.Angle)
	}
	// Integrated gyro z over the turn ≈ the turn angle.
	dt := tr.Samples[1].T - tr.Samples[0].T
	integ := 0.0
	for _, s := range tr.Samples {
		if s.T >= begin.T && s.T <= end.T {
			integ += s.Gyro[2] * dt
		}
	}
	if math.Abs(integ-math.Pi/2) > 0.15 {
		t.Errorf("integrated gyro = %g rad, want ≈π/2", integ)
	}
}

func TestMagnetometerTracksHeading(t *testing.T) {
	plan := Plan{Segments: []Segment{
		{Heading: 0, Distance: 2},
		{Heading: math.Pi / 2, Distance: 2},
	}}
	tr, _ := Synthesize(plan, Noise{MagSigma: 0.001}, rng.New(4))
	// Early heading ≈ 0; late heading ≈ π/2.
	early := math.Atan2(-tr.Samples[10].Mag[1], tr.Samples[10].Mag[0])
	lastIdx := len(tr.Samples) - 10
	late := math.Atan2(-tr.Samples[lastIdx].Mag[1], tr.Samples[lastIdx].Mag[0])
	if math.Abs(early) > 0.1 {
		t.Errorf("early heading %g, want ≈0", early)
	}
	if math.Abs(late-math.Pi/2) > 0.1 {
		t.Errorf("late heading %g, want ≈π/2", late)
	}
}

func TestPositionInterpolation(t *testing.T) {
	plan := Plan{Segments: []Segment{{Heading: 0, Distance: 4}}}
	tr, _ := Synthesize(plan, Noise{}, rng.New(5))
	x0, y0 := tr.PositionAt(-1)
	if x0 != 0 || y0 != 0 {
		t.Errorf("before-start position (%g, %g)", x0, y0)
	}
	// Position should be monotone along +x.
	prev := -1.0
	for tm := 0.0; tm < tr.Duration; tm += 0.2 {
		x, _ := tr.PositionAt(tm)
		if x < prev-1e-9 {
			t.Fatalf("position went backwards at t=%g", tm)
		}
		prev = x
	}
}

func TestHeadingAt(t *testing.T) {
	plan := Plan{Segments: []Segment{
		{Heading: 0, Distance: 2},
		{Heading: math.Pi / 2, Distance: 2},
	}}
	tr, _ := Synthesize(plan, Noise{}, rng.New(6))
	if h := tr.HeadingAt(0.1); math.Abs(h) > 1e-9 {
		t.Errorf("initial heading %g", h)
	}
	if h := tr.HeadingAt(tr.Duration); math.Abs(h-math.Pi/2) > 1e-9 {
		t.Errorf("final heading %g, want π/2", h)
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ b, a, want float64 }{
		{math.Pi / 2, 0, math.Pi / 2},
		{0, math.Pi / 2, -math.Pi / 2},
		{-3, 3, 2*math.Pi - 6},
		{math.Pi, 0, math.Pi},
	}
	for _, c := range cases {
		if got := AngleDiff(c.b, c.a); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("AngleDiff(%g, %g) = %g, want %g", c.b, c.a, got, c.want)
		}
	}
}

func TestRotationMatrixOps(t *testing.T) {
	r := RotationZYX(math.Pi/2, 0, 0)
	v := r.Apply([3]float64{1, 0, 0})
	if math.Abs(v[0]) > 1e-12 || math.Abs(v[1]-1) > 1e-12 {
		t.Errorf("yaw π/2 of x̂ = %v, want ŷ", v)
	}
	// Rᵀ·R = I.
	id := r.Transpose().Mul(r)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(id[i][j]-want) > 1e-12 {
				t.Errorf("RᵀR[%d][%d] = %g", i, j, id[i][j])
			}
		}
	}
}

func TestApplyPostureInvertible(t *testing.T) {
	plan := Plan{Segments: LShape(0, 3, 3)}
	tr, _ := Synthesize(plan, DefaultNoise(), rng.New(7))
	orig := append([]Sample(nil), tr.Samples...)
	r := RotationZYX(0.4, 0.2, -0.3)
	tr.ApplyPosture(r)
	// Check the posture changed something.
	if tr.Samples[50].Acc == orig[50].Acc {
		t.Error("posture did not rotate samples")
	}
	// Applying the inverse posture restores.
	tr.ApplyPosture(r.Transpose())
	for k := 0; k < 3; k++ {
		if math.Abs(tr.Samples[50].Acc[k]-orig[50].Acc[k]) > 1e-9 {
			t.Errorf("inverse posture did not restore acc[%d]", k)
		}
	}
}

// Property: for any single-leg plan, the travelled distance matches the
// plan's distance to within one step length.
func TestPropertyPlanDistance(t *testing.T) {
	f := func(dQ, hQ uint8) bool {
		dist := 1 + float64(dQ%80)/10 // 1 … 8.9 m
		heading := float64(hQ) / 255 * 2 * math.Pi
		plan := Plan{Segments: []Segment{{Heading: heading, Distance: dist}}, StartHeading: heading}
		tr, err := Synthesize(plan, Noise{}, rng.New(int64(dQ)*7+int64(hQ)))
		if err != nil {
			return false
		}
		x, y := tr.PositionAt(1e9)
		return math.Abs(math.Hypot(x, y)-dist) < 0.71
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomWaypointPlan(t *testing.T) {
	src := rng.New(3)
	plan := RandomWaypointPlan(8, 6, 5, src)
	if len(plan.Segments) == 0 {
		t.Fatal("empty plan")
	}
	tr, err := Synthesize(plan, DefaultNoise(), src)
	if err != nil {
		t.Fatal(err)
	}
	// The walk must stay inside the room (with small margins for step
	// quantization).
	for _, p := range tr.Truth {
		if p.X < -0.8 || p.X > 8.8 || p.Y < -0.8 || p.Y > 6.8 {
			t.Fatalf("walk left the room at (%.1f, %.1f)", p.X, p.Y)
		}
	}
	// Degenerate room still yields a usable plan.
	tiny := RandomWaypointPlan(0.1, 0.1, 3, rng.New(4))
	if len(tiny.Segments) == 0 {
		t.Error("tiny room should fall back to one leg")
	}
}

func TestHeightAtFollowsLift(t *testing.T) {
	plan := Plan{Segments: []Segment{
		{Heading: 0, Distance: 2},
		{Heading: 0, Lift: 1.0},
	}}
	tr, err := Synthesize(plan, Noise{}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if z := tr.HeightAt(0.1); math.Abs(z) > 1e-9 {
		t.Errorf("height before lift = %g", z)
	}
	if z := tr.HeightAt(tr.Duration); math.Abs(z-1.0) > 1e-9 {
		t.Errorf("final height = %g, want 1.0", z)
	}
	// Monotone during the lift.
	prev := -1.0
	for tm := 0.0; tm <= tr.Duration; tm += 0.1 {
		z := tr.HeightAt(tm)
		if z < prev-1e-9 {
			t.Fatalf("height decreased during a positive lift at t=%g", tm)
		}
		prev = z
	}
}
