// Package cluster implements LocBLE's multi-beacon clustering calibration
// (paper Sec. 6, Algorithm 2): beacons that are physically co-located see
// near-identical RSS *trends* during the observer's L-shaped walk, so
// their sequences DTW-match the target's; each matched neighbour yields
// its own position estimate, and the final target position is the
// confidence-weighted average of the cluster's estimates.
package cluster

import (
	"errors"
	"math"

	"locble/internal/dtw"
	"locble/internal/estimate"
	"locble/internal/mathx"
)

// binAverage averages samples into fixed bins of width 1/hz starting at
// start; empty bins are filled by linear interpolation between their
// neighbours. Averaging (rather than interpolating single samples)
// suppresses per-packet fast fading — which is independent even across
// co-located beacons — so the batched sequence is dominated by the
// spatially shared slow components the matcher must compare.
func binAverage(ts, vs []float64, start, end, hz float64) []float64 {
	step := 1 / hz
	nBins := int((end-start)/step) + 1
	if nBins <= 0 {
		return nil
	}
	sums := make([]float64, nBins)
	counts := make([]int, nBins)
	for i, t := range ts {
		b := int((t - start) / step)
		if b < 0 || b >= nBins {
			continue
		}
		sums[b] += vs[i]
		counts[b]++
	}
	out := make([]float64, nBins)
	for b := range out {
		if counts[b] > 0 {
			out[b] = sums[b] / float64(counts[b])
		} else {
			out[b] = math.NaN()
		}
	}
	// Fill empty bins by interpolating between known neighbours.
	for b := range out {
		if !math.IsNaN(out[b]) {
			continue
		}
		lo := b - 1
		for lo >= 0 && math.IsNaN(out[lo]) {
			lo--
		}
		hi := b + 1
		for hi < nBins && math.IsNaN(out[hi]) {
			hi++
		}
		switch {
		case lo >= 0 && hi < nBins:
			frac := float64(b-lo) / float64(hi-lo)
			out[b] = out[lo] + (out[hi]-out[lo])*frac
		case lo >= 0:
			out[b] = out[lo]
		case hi < nBins:
			out[b] = out[hi]
		default:
			out[b] = 0
		}
	}
	return out
}

// ErrNoTarget is returned when the target sequence is missing or empty.
var ErrNoTarget = errors.New("cluster: empty target sequence")

// Sequence is one beacon's RSS time series plus that beacon's independent
// position estimate for the target's location (each co-located beacon's
// own regression is a noisy measurement of the same physical spot).
type Sequence struct {
	Name string
	T    []float64
	RSS  []float64
	// Estimate is the position estimate computed from this beacon's RSS
	// (nil when estimation failed; such sequences can still vote on
	// cluster membership but contribute no position).
	Estimate *estimate.Estimate
}

// Config tunes the clustering calibration.
//
// Preprocessing follows the paper's intent (remove per-device offsets and
// high-frequency noise, then compare the sequences' shapes) with two
// refinements documented in DESIGN.md:
//
//  1. Sequences are *bin-averaged* to batch granularity (BatchHz). The
//     per-packet fast fading is independent even across co-located
//     beacons, so averaging within batches is what exposes the spatially
//     shared slow components (trend, shadowing, body blockage) that
//     co-located beacons actually have in common.
//  2. Each batched sequence is z-normalized (zero mean, unit variance) —
//     a scale- and offset-invariant transform serving the same purpose as
//     the paper's differencing ("avoid using absolute values") without
//     amplifying the independent high-frequency noise the way per-sample
//     differencing does. The DTW thresholds are then naturally
//     dimensionless: a segment matches when its distance is below
//     ZThreshold·√L.
type Config struct {
	// Matcher configures the fixed-window DTW voting (segment length and
	// warping window; the thresholds are derived from ZThreshold unless
	// AbsoluteThresholds is set).
	Matcher dtw.SegmentMatcherConfig
	// BatchHz is the common bin-averaging rate before normalization.
	BatchHz float64
	// ZThreshold is the per-point z-space match threshold (dimensionless).
	ZThreshold float64
	// AbsoluteThresholds uses Matcher's fixed thresholds (the paper's
	// empirical 6.1, calibrated to their devices' raw RSSI scale) instead
	// of the dimensionless rule.
	AbsoluteThresholds bool
	// MaxMemberDistance gates cluster membership by position consistency:
	// a DTW-matched neighbour only contributes its estimate when that
	// estimate lies within this distance of the target's own estimate
	// (metres). Clustering exists because co-located beacons estimate the
	// same physical spot; a "matched" sequence whose estimate is metres
	// away is a DTW false positive and would poison the weighted average.
	MaxMemberDistance float64
}

// PaperThreshold is the paper's empirical DTW/LB threshold for 10-point
// segments on their devices' RSSI scale (Sec. 6.1).
const PaperThreshold = 6.1

// DefaultConfig returns the pipeline's settings.
func DefaultConfig() Config {
	m := dtw.DefaultSegmentMatcherConfig()
	m.SegmentLen = 5
	m.Window = 1
	return Config{Matcher: m, BatchHz: 1, ZThreshold: 0.85, MaxMemberDistance: 3.5}
}

// Membership describes one candidate's clustering outcome.
type Membership struct {
	Name    string
	Matched bool
	// MatchedSegments / TotalSegments is the vote tally.
	MatchedSegments, TotalSegments int
	// Weight is the normalized probability weight used in the final
	// position average (0 when unmatched or without an estimate).
	Weight float64
}

// Result is the calibrated output.
type Result struct {
	// X, H is the calibrated target position.
	X, H float64
	// Confidence is the weighted mean of the member confidences.
	Confidence float64
	// Members records each sequence's matching outcome (including the
	// target itself, which always matches).
	Members []Membership
	// ClusterSize counts the matched members with usable estimates.
	ClusterSize int
}

// Calibrate runs Algorithm 2: match every candidate sequence against the
// target by segment-voting DTW on the differenced, interpolated series,
// then return the probability-weighted average of the matched members'
// position estimates. The target's own estimate must be non-nil.
func Calibrate(target Sequence, candidates []Sequence, cfg Config) (*Result, error) {
	if len(target.T) == 0 || len(target.RSS) == 0 {
		return nil, ErrNoTarget
	}
	if target.Estimate == nil {
		return nil, errors.New("cluster: target has no estimate")
	}
	if cfg.BatchHz <= 0 {
		cfg.BatchHz = 1
	}
	if cfg.ZThreshold <= 0 {
		cfg.ZThreshold = 0.85
	}
	if cfg.MaxMemberDistance <= 0 {
		cfg.MaxMemberDistance = 3.5
	}
	// Common batch bins over the target's time span, z-normalized.
	start, end := target.T[0], target.T[len(target.T)-1]
	zT := mathx.Standardize(binAverage(target.T, target.RSS, start, end, cfg.BatchHz))

	matcher := cfg.Matcher
	if matcher.SegmentLen <= 0 {
		matcher.SegmentLen = 5
	}
	if !cfg.AbsoluteThresholds {
		thr := cfg.ZThreshold * math.Sqrt(float64(matcher.SegmentLen))
		matcher.LBThreshold = thr
		matcher.DTWThreshold = thr
	}

	type member struct {
		est      *estimate.Estimate
		weight   float64
		memberIx int // index into res.Members
	}
	res := &Result{
		Members: []Membership{{Name: target.Name, Matched: true}},
	}
	members := []member{{est: target.Estimate, weight: math.Max(target.Estimate.Confidence, 1e-6), memberIx: 0}}

	for _, cand := range candidates {
		ms := Membership{Name: cand.Name}
		if len(cand.T) >= 2 && len(target.T) >= 2 {
			zC := mathx.Standardize(binAverage(cand.T, cand.RSS, start, end, cfg.BatchHz))
			match, err := dtw.MatchSequences(zT, zC, matcher)
			if err == nil {
				ms.Matched = match.Matched
				ms.MatchedSegments = match.MatchedCount
				ms.TotalSegments = match.TotalSegments
			}
		}
		res.Members = append(res.Members, ms)
		if ms.Matched && cand.Estimate != nil {
			members = append(members, member{
				est:      cand.Estimate,
				weight:   math.Max(cand.Estimate.Confidence, 1e-6),
				memberIx: len(res.Members) - 1,
			})
		}
	}

	// Position-consistency gate: co-located beacons estimate the same
	// physical spot, so estimates far from the members' (component-wise)
	// median are outliers — whether a DTW false positive or a diverged
	// regression — and are excluded from the average. Gating against the
	// median rather than the target's own estimate keeps the calibration
	// robust when the *target's* estimate is the outlier.
	if len(members) > 2 {
		xs := make([]float64, len(members))
		hs := make([]float64, len(members))
		for i, m := range members {
			xs[i] = m.est.X
			hs[i] = m.est.H
		}
		medX, medH := mathx.Median(xs), mathx.Median(hs)
		kept := members[:0]
		for _, m := range members {
			if math.Hypot(m.est.X-medX, m.est.H-medH) <= cfg.MaxMemberDistance {
				kept = append(kept, m)
			}
		}
		if len(kept) > 0 {
			members = kept
		}
	} else if len(members) == 2 {
		// With a single neighbour there is no majority to take a median
		// over; gate against the target's own estimate instead.
		d := math.Hypot(members[1].est.X-members[0].est.X, members[1].est.H-members[0].est.H)
		if d > cfg.MaxMemberDistance {
			members = members[:1]
		}
	}

	// Weighted sum of candidate positions (paper Sec. 6.2).
	var sw, sx, sh, sc float64
	for _, m := range members {
		sw += m.weight
		sx += m.weight * m.est.X
		sh += m.weight * m.est.H
		sc += m.weight * m.est.Confidence
	}
	res.X = sx / sw
	res.H = sh / sw
	res.Confidence = sc / sw
	res.ClusterSize = len(members)
	for _, m := range members {
		res.Members[m.memberIx].Weight = m.weight / sw
	}
	return res, nil
}
