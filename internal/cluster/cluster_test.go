package cluster

import (
	"errors"
	"math"
	"testing"

	"locble/internal/estimate"
	"locble/internal/imu"
	"locble/internal/rf"
	"locble/internal/rng"
	"locble/internal/sim"
)

func est(x, h, conf float64) *estimate.Estimate {
	return &estimate.Estimate{X: x, H: h, Confidence: conf, Candidates: []estimate.Candidate{{X: x, H: h}}}
}

// seqFromSim extracts a beacon's sequence from a simulated trace.
func seqFromSim(tr *sim.Trace, name string, e *estimate.Estimate) Sequence {
	ts, rss := tr.RSSSeries(name)
	return Sequence{Name: name, T: ts, RSS: rss, Estimate: e}
}

func clusterScenario(seed int64) sim.Scenario {
	return sim.Scenario{
		Beacons: []sim.BeaconSpec{
			{Name: "target", X: 7, Y: 3},
			{Name: "near1", X: 7.3, Y: 3},
			{Name: "near2", X: 7, Y: 3.3},
			{Name: "far", X: 1, Y: 7},
		},
		ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
		EnvModel:     sim.StaticEnv(rf.NLOS),
		Seed:         seed,
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(Sequence{}, nil, DefaultConfig()); !errors.Is(err, ErrNoTarget) {
		t.Errorf("want ErrNoTarget, got %v", err)
	}
	noEst := Sequence{Name: "t", T: []float64{1, 2}, RSS: []float64{-70, -71}}
	if _, err := Calibrate(noEst, nil, DefaultConfig()); err == nil {
		t.Error("want error for missing target estimate")
	}
}

func TestCalibrateTargetOnly(t *testing.T) {
	tr, err := sim.Run(clusterScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	target := seqFromSim(tr, "target", est(7, 3, 0.9))
	res, err := Calibrate(target, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ClusterSize != 1 || res.X != 7 || res.H != 3 {
		t.Errorf("target-only calibration = %+v", res)
	}
}

func TestClusteringStatistics(t *testing.T) {
	// Over many seeds: near beacons must join the cluster clearly more
	// often than the far beacon.
	nearJoin, farJoin, runs := 0, 0, 0
	for seed := int64(1); seed <= 14; seed++ {
		tr, err := sim.Run(clusterScenario(seed))
		if err != nil {
			t.Fatal(err)
		}
		target := seqFromSim(tr, "target", est(7, 3, 0.8))
		cands := []Sequence{
			seqFromSim(tr, "near1", est(7.2, 3.1, 0.6)),
			seqFromSim(tr, "near2", est(6.9, 3.4, 0.6)),
			seqFromSim(tr, "far", est(1.3, 6.8, 0.6)),
		}
		res, err := Calibrate(target, cands, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range res.Members {
			switch m.Name {
			case "near1", "near2":
				if m.Matched {
					nearJoin++
				}
			case "far":
				if m.Matched {
					farJoin++
				}
			}
		}
		runs++
	}
	nearRate := float64(nearJoin) / float64(2*runs)
	farRate := float64(farJoin) / float64(runs)
	t.Logf("near join rate %.2f, far join rate %.2f over %d runs", nearRate, farRate, runs)
	if nearRate < 0.5 {
		t.Errorf("near-beacon join rate %.2f too low", nearRate)
	}
	if farRate > nearRate-0.2 {
		t.Errorf("far beacon joins almost as often (%.2f) as near (%.2f)", farRate, nearRate)
	}
}

func TestPositionGateExcludesDistantEstimates(t *testing.T) {
	// Even if a far beacon's sequence matches by chance, its estimate
	// (far from the target's) must not receive weight.
	tr, err := sim.Run(clusterScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	target := seqFromSim(tr, "target", est(7, 3, 0.9))
	// Candidate with an identical RSS sequence (guaranteed DTW match) but
	// a wildly different position estimate.
	impostor := target
	impostor.Name = "impostor"
	impostor.Estimate = est(-5, 20, 0.99)
	res, err := Calibrate(target, []Sequence{impostor}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Members {
		if m.Name == "impostor" && m.Weight != 0 {
			t.Errorf("impostor received weight %g", m.Weight)
		}
	}
	if math.Hypot(res.X-7, res.H-3) > 1e-9 {
		t.Errorf("calibrated position moved to (%g, %g)", res.X, res.H)
	}
}

func TestWeightsAreNormalized(t *testing.T) {
	tr, err := sim.Run(clusterScenario(5))
	if err != nil {
		t.Fatal(err)
	}
	target := seqFromSim(tr, "target", est(7, 3, 0.8))
	cands := []Sequence{
		seqFromSim(tr, "near1", est(7.2, 3.1, 0.5)),
		seqFromSim(tr, "near2", est(7.1, 2.9, 0.7)),
	}
	res, err := Calibrate(target, cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, m := range res.Members {
		if m.Weight < 0 {
			t.Errorf("negative weight %g", m.Weight)
		}
		sum += m.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g", sum)
	}
	// The calibrated position is inside the members' convex hull.
	if res.X < 6.9 || res.X > 7.3 || res.H < 2.9 || res.H > 3.4 {
		t.Errorf("calibrated (%g, %g) outside member positions", res.X, res.H)
	}
}

func TestCalibrationReducesNoisyError(t *testing.T) {
	// Statistical claim of Fig. 15: averaging cluster members' estimates
	// beats a single noisy estimate. Simulate noisy member estimates
	// around the truth and verify the weighted mean error shrinks.
	src := rng.New(6)
	truth := estimate.Candidate{X: 7, H: 3}
	var single, clustered float64
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		tr, err := sim.Run(clusterScenario(int64(100 + trial)))
		if err != nil {
			t.Fatal(err)
		}
		noisy := func() *estimate.Estimate {
			return est(truth.X+src.Normal(0, 1.5), truth.H+src.Normal(0, 1.5), 0.7)
		}
		tEst := noisy()
		target := seqFromSim(tr, "target", tEst)
		cands := []Sequence{
			seqFromSim(tr, "near1", noisy()),
			seqFromSim(tr, "near2", noisy()),
		}
		res, err := Calibrate(target, cands, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		single += math.Hypot(tEst.X-truth.X, tEst.H-truth.H)
		clustered += math.Hypot(res.X-truth.X, res.H-truth.H)
	}
	single /= trials
	clustered /= trials
	t.Logf("single %.2f m vs clustered %.2f m", single, clustered)
	if clustered >= single {
		t.Errorf("clustering did not reduce error: %.2f vs %.2f", clustered, single)
	}
}

func TestBinAverage(t *testing.T) {
	ts := []float64{0, 0.1, 0.2, 1.0, 1.1, 2.5}
	vs := []float64{1, 2, 3, 10, 20, 42}
	out := binAverage(ts, vs, 0, 2.5, 1)
	if len(out) != 3 {
		t.Fatalf("bins = %d", len(out))
	}
	if math.Abs(out[0]-2) > 1e-12 {
		t.Errorf("bin 0 = %g, want 2", out[0])
	}
	if math.Abs(out[1]-15) > 1e-12 {
		t.Errorf("bin 1 = %g, want 15", out[1])
	}
	if math.Abs(out[2]-42) > 1e-12 {
		t.Errorf("bin 2 = %g, want 42", out[2])
	}
}

func TestBinAverageFillsGaps(t *testing.T) {
	ts := []float64{0, 3}
	vs := []float64{0, 30}
	out := binAverage(ts, vs, 0, 3, 1)
	// Bins 1 and 2 are empty → interpolated between 0 and 30.
	if len(out) != 4 {
		t.Fatalf("bins = %d", len(out))
	}
	if math.Abs(out[1]-10) > 1e-9 || math.Abs(out[2]-20) > 1e-9 {
		t.Errorf("gap fill = %v", out)
	}
	for _, v := range out {
		if math.IsNaN(v) {
			t.Fatal("NaN left in binned output")
		}
	}
}

func TestAbsoluteThresholdsMode(t *testing.T) {
	// The paper-literal mode uses the fixed 6.1 threshold instead of the
	// z-space rule; it must run end to end.
	tr, err := sim.Run(clusterScenario(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.AbsoluteThresholds = true
	cfg.Matcher.LBThreshold = PaperThreshold
	cfg.Matcher.DTWThreshold = PaperThreshold
	target := seqFromSim(tr, "target", est(7, 3, 0.9))
	cands := []Sequence{seqFromSim(tr, "near1", est(7.2, 3.1, 0.6))}
	res, err := Calibrate(target, cands, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClusterSize < 1 {
		t.Error("absolute-threshold calibration lost the target")
	}
	// z-normalized sequences have tiny distances, so the paper's raw-RSSI
	// threshold of 6.1 accepts everything — which is exactly why the
	// dimensionless rule is the default.
	for _, m := range res.Members {
		if m.Name == "near1" && !m.Matched {
			t.Error("near beacon rejected under the permissive absolute threshold")
		}
	}
}

func TestCandidateWithoutEstimateStillVotes(t *testing.T) {
	tr, err := sim.Run(clusterScenario(9))
	if err != nil {
		t.Fatal(err)
	}
	target := seqFromSim(tr, "target", est(7, 3, 0.9))
	noEst := seqFromSim(tr, "near1", nil)
	res, err := Calibrate(target, []Sequence{noEst}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The estimate-less member appears in the membership report but never
	// contributes weight.
	for _, m := range res.Members {
		if m.Name == "near1" && m.Weight != 0 {
			t.Error("estimate-less member received weight")
		}
	}
	if res.X != 7 || res.H != 3 {
		t.Error("calibration moved despite no usable members")
	}
}
