package sigproc

import (
	"errors"
	"fmt"
)

// Filter-state export/restore, the sigproc half of session
// checkpointing: a long-running tracking session must survive a process
// restart without cold-starting its filters (a freshly primed cascade
// would re-converge over seconds of samples and shift every fix in the
// meantime). Each stateful block exposes a Snapshot that captures its
// dynamic state — delay lines, Kalman covariance, AKF adaptation — as a
// plain exported struct that marshals to JSON, and a Restore that puts
// an identically *designed* instance back into that state. Restoring is
// sample-for-sample exact: Process after Restore returns bit-identical
// outputs to the uninterrupted run.
//
// Design parameters (filter order, cutoff, noise variances) are NOT
// part of a snapshot: they belong to configuration, and restoring into
// a differently designed filter is an error, not a silent blend.

// ErrStateMismatch is returned when a snapshot does not fit the filter
// it is being restored into (e.g. different Butterworth order).
var ErrStateMismatch = errors.New("sigproc: snapshot does not match filter design")

// BiquadState is the delay line of one second-order section.
type BiquadState struct {
	Z1 float64 `json:"z1"`
	Z2 float64 `json:"z2"`
}

// ButterworthState is the dynamic state of a Butterworth cascade.
type ButterworthState struct {
	Primed   bool          `json:"primed"`
	Sections []BiquadState `json:"sections"`
}

// Snapshot captures the cascade's delay lines and priming flag.
func (f *Butterworth) Snapshot() ButterworthState {
	st := ButterworthState{Primed: f.primed, Sections: make([]BiquadState, len(f.sections))}
	for i := range f.sections {
		st.Sections[i] = BiquadState{Z1: f.sections[i].z1, Z2: f.sections[i].z2}
	}
	return st
}

// Restore puts an identically designed filter back into a snapshotted
// state. The section count must match the receiver's design.
func (f *Butterworth) Restore(st ButterworthState) error {
	if len(st.Sections) != len(f.sections) {
		return fmt.Errorf("%w: snapshot has %d sections, filter has %d",
			ErrStateMismatch, len(st.Sections), len(f.sections))
	}
	f.primed = st.Primed
	for i := range f.sections {
		f.sections[i].z1 = st.Sections[i].Z1
		f.sections[i].z2 = st.Sections[i].Z2
	}
	return nil
}

// KalmanState is the full state of a scalar Kalman filter. Q is included
// even though it is nominally a design parameter because the AKF adapts
// it every sample — it is dynamic state there.
type KalmanState struct {
	Q      float64 `json:"q"`
	R      float64 `json:"r"`
	X      float64 `json:"x"`
	P      float64 `json:"p"`
	Primed bool    `json:"primed"`
}

// Snapshot captures the filter's state and noise parameters.
func (k *Kalman) Snapshot() KalmanState {
	return KalmanState{Q: k.Q, R: k.R, X: k.x, P: k.p, Primed: k.primed}
}

// Restore puts the filter back into a snapshotted state.
func (k *Kalman) Restore(st KalmanState) {
	k.Q, k.R = st.Q, st.R
	k.x, k.p = st.X, st.P
	k.primed = st.Primed
}

// AKFState is the dynamic state of the BF+AKF cascade: the inner Kalman
// filter (including its adapted Q), the Butterworth delay lines, the
// innovation statistics driving adaptation, and the run statistics, so
// a restored session reports continuous observability numbers.
type AKFState struct {
	KF       KalmanState      `json:"kf"`
	BF       ButterworthState `json:"bf"`
	BaseQ    float64          `json:"base_q"`
	InnovVar float64          `json:"innov_var"`
	Bias     float64          `json:"bias"`
	Alpha    float64          `json:"alpha"`
	Stats    AKFStats         `json:"stats"`

	MinAlpha   float64 `json:"min_alpha"`
	MaxAlpha   float64 `json:"max_alpha"`
	AdaptRate  float64 `json:"adapt_rate"`
	DivergeSig float64 `json:"diverge_sig"`
}

// Snapshot captures the cascade's complete dynamic state.
func (a *AKF) Snapshot() AKFState {
	return AKFState{
		KF:       a.kf.Snapshot(),
		BF:       a.bf.Snapshot(),
		BaseQ:    a.baseQ,
		InnovVar: a.innovVar,
		Bias:     a.bias,
		Alpha:    a.alpha,
		Stats:    a.stats,

		MinAlpha:   a.MinAlpha,
		MaxAlpha:   a.MaxAlpha,
		AdaptRate:  a.AdaptRate,
		DivergeSig: a.DivergeSig,
	}
}

// Restore puts an identically designed cascade back into a snapshotted
// state. The wrapped Butterworth's design must match.
func (a *AKF) Restore(st AKFState) error {
	if err := a.bf.Restore(st.BF); err != nil {
		return err
	}
	a.kf.Restore(st.KF)
	a.baseQ = st.BaseQ
	a.innovVar = st.InnovVar
	a.bias = st.Bias
	a.alpha = st.Alpha
	a.stats = st.Stats
	a.MinAlpha = st.MinAlpha
	a.MaxAlpha = st.MaxAlpha
	a.AdaptRate = st.AdaptRate
	a.DivergeSig = st.DivergeSig
	return nil
}
