package sigproc

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"locble/internal/rng"
)

func TestButterworthDesignErrors(t *testing.T) {
	cases := []struct {
		order            int
		cutoff, sampleHz float64
	}{
		{5, 1, 10},  // odd order
		{0, 1, 10},  // zero order
		{6, 0, 10},  // zero cutoff
		{6, 6, 10},  // cutoff above Nyquist
		{6, 1, 0},   // zero sample rate
		{6, -1, 10}, // negative cutoff
	}
	for _, c := range cases {
		if _, err := NewButterworth(c.order, c.cutoff, c.sampleHz); !errors.Is(err, ErrFilterDesign) {
			t.Errorf("order=%d fc=%g fs=%g: want ErrFilterDesign, got %v", c.order, c.cutoff, c.sampleHz, err)
		}
	}
}

func TestButterworthDCGain(t *testing.T) {
	bf, err := NewButterworth(6, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// A constant input must pass through with unit gain.
	var y float64
	for i := 0; i < 300; i++ {
		y = bf.Process(-70)
	}
	if math.Abs(y-(-70)) > 1e-6 {
		t.Errorf("DC gain: output %g for constant −70 input", y)
	}
}

func TestButterworthPriming(t *testing.T) {
	// Thanks to priming, even the FIRST output should be at the input
	// level (no ring-up from zero).
	bf, _ := NewButterworth(6, 1, 10)
	y := bf.Process(-70)
	if math.Abs(y-(-70)) > 1e-6 {
		t.Errorf("first output = %g, want −70 (primed)", y)
	}
}

func TestButterworthAttenuatesHighFrequency(t *testing.T) {
	bf, _ := NewButterworth(6, 0.5, 10)
	// 4 Hz tone at 10 Hz sampling — far above the 0.5 Hz cutoff.
	const n = 400
	var peakIn, peakOut float64
	for i := 0; i < n; i++ {
		x := math.Sin(2 * math.Pi * 4 * float64(i) / 10)
		y := bf.Process(x)
		if i > n/2 {
			peakIn = math.Max(peakIn, math.Abs(x))
			peakOut = math.Max(peakOut, math.Abs(y))
		}
	}
	if peakOut > peakIn*0.01 {
		t.Errorf("4 Hz tone attenuated only to %g of input", peakOut/peakIn)
	}
}

func TestButterworthPassesLowFrequency(t *testing.T) {
	bf, _ := NewButterworth(6, 2, 10)
	// 0.2 Hz tone — well below cutoff.
	var peakOut float64
	for i := 0; i < 600; i++ {
		y := bf.Process(math.Sin(2 * math.Pi * 0.2 * float64(i) / 10))
		if i > 300 {
			peakOut = math.Max(peakOut, math.Abs(y))
		}
	}
	if peakOut < 0.9 {
		t.Errorf("0.2 Hz tone passed at only %g", peakOut)
	}
}

func TestButterworthOrderSharpness(t *testing.T) {
	// Higher order attenuates an above-cutoff tone more.
	atten := func(order int) float64 {
		bf, _ := NewButterworth(order, 1, 10)
		var peak float64
		for i := 0; i < 400; i++ {
			y := bf.Process(math.Sin(2 * math.Pi * 2 * float64(i) / 10))
			if i > 200 {
				peak = math.Max(peak, math.Abs(y))
			}
		}
		return peak
	}
	if a2, a6 := atten(2), atten(6); a6 >= a2 {
		t.Errorf("order 6 (%g) should attenuate more than order 2 (%g)", a6, a2)
	}
}

func TestGroupDelayGrowsWithOrder(t *testing.T) {
	bf2, _ := NewButterworth(2, 1, 10)
	bf8, _ := NewButterworth(8, 1, 10)
	if d2, d8 := bf2.GroupDelaySamples(), bf8.GroupDelaySamples(); d8 <= d2 {
		t.Errorf("delay(8th)=%g should exceed delay(2nd)=%g", d8, d2)
	}
}

func TestFilterResets(t *testing.T) {
	bf, _ := NewButterworth(4, 1, 10)
	a := bf.Filter([]float64{-70, -71, -72, -69, -70})
	b := bf.Filter([]float64{-70, -71, -72, -69, -70})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Filter is not deterministic after Reset: %v vs %v", a, b)
		}
	}
}

func TestKalmanConvergesToConstant(t *testing.T) {
	k := NewKalman(0.01, 4)
	src := rng.New(1)
	var last float64
	for i := 0; i < 500; i++ {
		last = k.Process(-70 + src.Normal(0, 2))
	}
	if math.Abs(last-(-70)) > 1.0 {
		t.Errorf("Kalman converged to %g, want ≈ −70", last)
	}
	x, p := k.State()
	if x != last || p <= 0 {
		t.Errorf("State() = %g, %g", x, p)
	}
}

func TestKalmanReset(t *testing.T) {
	k := NewKalman(0.01, 1)
	k.Process(5)
	k.Reset()
	if y := k.Process(10); y != 10 {
		t.Errorf("after Reset first output = %g, want 10 (re-primed)", y)
	}
}

func TestAKFSmoothsNoise(t *testing.T) {
	bf, _ := NewButterworth(6, 0.9, 9)
	akf := NewAKF(bf)
	src := rng.New(2)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = -70 + src.Normal(0, 3)
	}
	ys := akf.Filter(xs)
	varIn, varOut := variance(xs), variance(ys)
	if varOut > varIn*0.3 {
		t.Errorf("AKF reduced variance only %g→%g", varIn, varOut)
	}
}

func TestAKFFasterThanBFOnStep(t *testing.T) {
	// The AKF's whole purpose (Sec. 4.2): respond to a genuine level step
	// faster than the Butterworth alone.
	settle := func(filter func(float64) float64) int {
		for i := 0; i < 400; i++ {
			filter(-80)
		}
		for i := 0; i < 400; i++ {
			if y := filter(-60); math.Abs(y-(-60)) < 2 {
				return i
			}
		}
		return 400
	}
	bf1, _ := NewButterworth(6, 0.5, 9)
	bfOnly := settle(bf1.Process)
	bf2, _ := NewButterworth(6, 0.5, 9)
	akf := NewAKF(bf2)
	akfSteps := settle(akf.Process)
	if akfSteps >= bfOnly {
		t.Errorf("AKF settled in %d steps, BF alone in %d — AKF must be faster", akfSteps, bfOnly)
	}
}

func TestAKFAlphaAdapts(t *testing.T) {
	bf, _ := NewButterworth(6, 0.5, 9)
	akf := NewAKF(bf)
	for i := 0; i < 100; i++ {
		akf.Process(-70)
	}
	calm := akf.Alpha()
	// Large persistent divergence drives alpha up.
	for i := 0; i < 30; i++ {
		akf.Process(-50)
	}
	excited := akf.Alpha()
	if excited <= calm {
		t.Errorf("alpha should rise on divergence: %g → %g", calm, excited)
	}
	if excited > akf.MaxAlpha+1e-9 {
		t.Errorf("alpha %g exceeded MaxAlpha %g", excited, akf.MaxAlpha)
	}
}

func TestMovingAverage(t *testing.T) {
	ma := NewMovingAverage(3)
	got := []float64{
		ma.Process(3),  // mean(3)
		ma.Process(6),  // mean(3,6)
		ma.Process(9),  // mean(3,6,9)
		ma.Process(12), // mean(6,9,12)
	}
	want := []float64{3, 4.5, 6, 9}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MA[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if NewMovingAverage(0).Process(5) != 5 {
		t.Error("window 0 should clamp to 1")
	}
}

func TestSmoothLength(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Smooth(xs, 2); len(got) != len(xs) {
		t.Errorf("Smooth changed length: %d", len(got))
	}
}

func TestFiltFiltZeroPhase(t *testing.T) {
	// A slow ramp with noise: zero-phase output must not lag the ramp.
	bf, _ := NewButterworth(6, 0.9, 9)
	src := rng.New(3)
	n := 180
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = -80 + 10*float64(i)/float64(n) + src.Normal(0, 2)
	}
	ys := FiltFilt(bf, xs)
	if len(ys) != n {
		t.Fatalf("length %d", len(ys))
	}
	// Compare mid-series: FiltFilt should track the true ramp closely.
	trueMid := -80 + 10*0.5
	if math.Abs(ys[n/2]-trueMid) > 1.5 {
		t.Errorf("FiltFilt mid = %g, want ≈ %g (no lag)", ys[n/2], trueMid)
	}
	// Forward-only filtering *does* lag behind (sanity contrast).
	bf2, _ := NewButterworth(6, 0.9, 9)
	fwd := bf2.Filter(xs)
	if math.Abs(fwd[n-1]-xs[n-1]) < math.Abs(ys[n-1]-xs[n-1])-3 {
		t.Log("forward filter unexpectedly close at the end (noise)")
	}
	if FiltFilt(bf, nil) != nil {
		t.Error("empty FiltFilt should be nil")
	}
}

// Property: the Butterworth output of a bounded signal stays bounded
// (stability), for all even orders 2–8 and valid cutoffs.
func TestPropertyButterworthStable(t *testing.T) {
	f := func(orderPick, cutPick, seed uint8) bool {
		order := 2 + 2*int(orderPick%4)
		cutoff := 0.2 + float64(cutPick%40)/10 // 0.2 … 4.1 Hz at 10 Hz
		bf, err := NewButterworth(order, cutoff, 10)
		if err != nil {
			return false
		}
		src := rng.New(int64(seed))
		for i := 0; i < 500; i++ {
			y := bf.Process(src.Uniform(-100, -40))
			if math.Abs(y) > 1000 || math.IsNaN(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func variance(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return v / float64(len(xs))
}
