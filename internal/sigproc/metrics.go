package sigproc

import "locble/internal/obs"

// Package-level instrumentation handles, resolved once so the hot paths
// record with plain atomic operations. Everything here lands in
// obs.Default; per-run AKF statistics are engine-scoped instead — the
// pipeline pulls them from AKF.Stats() and records them in its own
// registry.
var (
	// groupDelayProbes counts GroupDelaySamples probe runs.
	groupDelayProbes = obs.Default.Counter("sigproc.groupdelay.probes")
	// groupDelaySamples is the distribution of measured group delays
	// (in samples).
	groupDelaySamples = obs.Default.Histogram("sigproc.groupdelay.samples",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096})
)
