package sigproc

import "math"

// Kalman is a scalar (1-D state) Kalman filter tracking a slowly varying
// level — the smoothed RSS — from noisy observations.
type Kalman struct {
	// Q is the process noise variance (how fast the true level may move).
	Q float64
	// R is the measurement noise variance.
	R float64

	x      float64 // state estimate
	p      float64 // estimate variance
	primed bool
}

// NewKalman returns a scalar Kalman filter with the given process and
// measurement noise variances.
func NewKalman(q, r float64) *Kalman {
	return &Kalman{Q: q, R: r}
}

// Process folds one measurement in and returns the updated state estimate.
func (k *Kalman) Process(z float64) float64 {
	if !k.primed {
		k.x = z
		k.p = k.R
		k.primed = true
		return k.x
	}
	// Predict.
	k.p += k.Q
	// Update.
	gain := k.p / (k.p + k.R)
	k.x += gain * (z - k.x)
	k.p *= 1 - gain
	return k.x
}

// State returns the current estimate and its variance.
func (k *Kalman) State() (x, p float64) { return k.x, k.p }

// Reset clears the filter.
func (k *Kalman) Reset() { k.primed = false; k.x, k.p = 0, 0 }

// AKF is the paper's adaptive Kalman filter (Sec. 4.2): the Butterworth
// output is smooth but delayed; the raw RSS is responsive but noisy. AKF
// runs a Kalman filter whose *measurement* is a blend of the two, with the
// blend weight adapted from the innovation: when raw readings consistently
// diverge from the Butterworth output (the channel genuinely moved), the
// filter leans toward the raw stream to cut the delay; when they agree,
// it leans on the Butterworth output for smoothness.
type AKF struct {
	kf    *Kalman
	bf    *Butterworth
	baseQ float64

	// innovation statistics for adaptation
	innovVar float64
	bias     float64 // EWMA of the signed innovation
	alpha    float64 // current raw-vs-BF blend weight in [minAlpha, maxAlpha]

	stats AKFStats // run statistics for observability (see Stats)

	// Adaptation parameters.
	MinAlpha   float64 // floor of raw weight (keeps smoothness)
	MaxAlpha   float64 // ceiling of raw weight (keeps stability)
	AdaptRate  float64 // EWMA rate for the innovation variance
	DivergeSig float64 // innovation z-score at which alpha saturates
}

// AKFStats summarizes one filtering run for observability: how noisy the
// raw-vs-smooth innovation was and how far the blend leaned toward the
// raw stream. Accumulated with plain (non-atomic) field updates — an AKF
// instance is single-goroutine, and the pipeline records the aggregate
// into its metrics registry after the run.
type AKFStats struct {
	// Samples processed since construction or the last Reset.
	Samples int
	// InnovSum / InnovAbsMax describe the raw−smooth innovation.
	InnovSum    float64
	InnovAbsMax float64
	// AlphaSum / AlphaMax describe the raw-stream blend weight.
	AlphaSum float64
	AlphaMax float64
	// Diverged counts samples whose innovation z-score exceeded the ramp
	// threshold — moments the filter judged the channel genuinely moving.
	Diverged int
}

// InnovMean returns the mean signed innovation (0 for an empty run).
func (s AKFStats) InnovMean() float64 {
	if s.Samples == 0 {
		return 0
	}
	return s.InnovSum / float64(s.Samples)
}

// AlphaMean returns the mean blend weight (0 for an empty run).
func (s AKFStats) AlphaMean() float64 {
	if s.Samples == 0 {
		return 0
	}
	return s.AlphaSum / float64(s.Samples)
}

// Stats returns the run statistics accumulated since construction or the
// last Reset.
func (a *AKF) Stats() AKFStats { return a.stats }

// NewAKF builds the paper's BF+AKF cascade: a Butterworth low-pass filter
// (order, cutoff, sampling rate) fused by an adaptive Kalman filter.
func NewAKF(bf *Butterworth) *AKF {
	return &AKF{
		kf:         NewKalman(0.05, 2.0),
		baseQ:      0.05,
		bf:         bf,
		alpha:      0.2,
		MinAlpha:   0.1,
		MaxAlpha:   0.95,
		AdaptRate:  0.15,
		DivergeSig: 3.5,
	}
}

// Process consumes one raw RSS sample and returns the fused estimate.
func (a *AKF) Process(raw float64) float64 {
	smooth := a.bf.Process(raw)

	// The raw−smooth innovation distinguishes two situations:
	//   * symmetric per-sample noise — the innovation flips sign, its
	//     short-term mean (bias) stays near zero → trust the smooth stream;
	//   * a genuine level change — the Butterworth output lags behind and
	//     the innovation stays one-sided → trust the raw stream until the
	//     smooth stream catches up.
	// The bias is normalized by the *calm-period* innovation scale, which
	// is deliberately not updated during divergence: a sustained transient
	// must not inflate its own normalization, or the filter would conclude
	// mid-transient that the divergence is ordinary.
	innov := raw - smooth
	const biasRate = 0.35
	a.bias = (1-biasRate)*a.bias + biasRate*innov
	// Std of the bias of pure noise: σ·sqrt(r/(2−r)).
	biasSigma := math.Sqrt(a.innovVar) * math.Sqrt(biasRate/(2-biasRate))
	z := 0.0
	if biasSigma > 1e-9 {
		z = math.Abs(a.bias) / biasSigma
	}
	if z < 2 || a.innovVar == 0 {
		a.innovVar = (1-a.AdaptRate)*a.innovVar + a.AdaptRate*innov*innov
	}

	// Noise keeps z around 1; only a clearly one-sided divergence ramps
	// the raw-stream weight up.
	const rampStart = 1.6
	frac := math.Min(math.Max(z-rampStart, 0)/(a.DivergeSig-rampStart+1e-9), 1)
	target := a.MinAlpha + (a.MaxAlpha-a.MinAlpha)*frac
	a.alpha += 0.5 * (target - a.alpha)

	a.stats.Samples++
	a.stats.InnovSum += innov
	if ai := math.Abs(innov); ai > a.stats.InnovAbsMax {
		a.stats.InnovAbsMax = ai
	}
	a.stats.AlphaSum += a.alpha
	if a.alpha > a.stats.AlphaMax {
		a.stats.AlphaMax = a.alpha
	}
	if frac > 0 {
		a.stats.Diverged++
	}

	blended := a.alpha*raw + (1-a.alpha)*smooth
	// Adaptive process noise: when the blend leans toward the raw stream
	// (the channel is genuinely moving), the tracker must also believe the
	// level can move quickly, or the Kalman gain itself becomes the
	// bottleneck on responsiveness.
	a.kf.Q = a.baseQ * (1 + 80*a.alpha*a.alpha)
	return a.kf.Process(blended)
}

// Alpha returns the current raw-stream blend weight (for diagnostics).
func (a *AKF) Alpha() float64 { return a.alpha }

// Reset clears all filter state, restoring the exact behaviour of a
// freshly constructed cascade: the inner Kalman's adaptive process noise
// (mutated every Process call) returns to its base value and the run
// statistics restart, so reset-then-filter is sample-for-sample
// identical to fresh-then-filter.
func (a *AKF) Reset() {
	a.kf.Reset()
	a.kf.Q = a.baseQ
	a.bf.Reset()
	a.innovVar = 0
	a.bias = 0
	a.alpha = 0.2
	a.stats = AKFStats{}
}

// Filter applies the AKF to a whole series from a reset state.
func (a *AKF) Filter(xs []float64) []float64 {
	a.Reset()
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = a.Process(x)
	}
	return out
}
