package sigproc

import (
	"testing"
)

// TestFilterIntoMatchesFilter pins the scratch path to the allocating
// path bit-for-bit, including the in-place dst==xs case.
func TestFilterIntoMatchesFilter(t *testing.T) {
	bf, err := NewButterworth(6, 0.9, 9)
	if err != nil {
		t.Fatal(err)
	}
	xs := benchInput(257)
	want := bf.Filter(xs)

	got := bf.FilterInto(make([]float64, 0, len(xs)), xs)
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FilterInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	inPlace := append([]float64(nil), xs...)
	out := bf.FilterInto(inPlace, inPlace)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("in-place FilterInto[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

// TestFilterIntoGrows checks an undersized dst is reallocated rather
// than truncating the output.
func TestFilterIntoGrows(t *testing.T) {
	bf, err := NewButterworth(4, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	xs := benchInput(64)
	small := make([]float64, 3)
	got := bf.FilterInto(small, xs)
	want := bf.Filter(xs)
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grown FilterInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestFiltFiltIntoMatchesFiltFilt pins the zero-phase scratch path to
// the allocating path bit-for-bit.
func TestFiltFiltIntoMatchesFiltFilt(t *testing.T) {
	bf, err := NewButterworth(6, 0.9, 9)
	if err != nil {
		t.Fatal(err)
	}
	xs := benchInput(200)
	want := FiltFilt(bf, xs)
	scratch := make([]float64, 0, len(xs))
	got := FiltFiltInto(bf, xs, scratch)
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FiltFiltInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Reuse across series of different lengths must stay correct.
	ys := benchInput(90)
	want2 := FiltFilt(bf, ys)
	got2 := FiltFiltInto(bf, ys, got)
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatalf("reused FiltFiltInto[%d] = %v, want %v", i, got2[i], want2[i])
		}
	}
}

// TestFilterIntoZeroAlloc asserts the steady-state scratch paths do not
// allocate once the buffer has grown to the series length.
func TestFilterIntoZeroAlloc(t *testing.T) {
	bf, err := NewButterworth(6, 0.9, 9)
	if err != nil {
		t.Fatal(err)
	}
	xs := benchInput(300)
	dst := make([]float64, len(xs))
	if n := testing.AllocsPerRun(50, func() {
		dst = bf.FilterInto(dst, xs)
	}); n != 0 {
		t.Fatalf("FilterInto allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		dst = FiltFiltInto(bf, xs, dst)
	}); n != 0 {
		t.Fatalf("FiltFiltInto allocates %v per run, want 0", n)
	}
}

func BenchmarkFilterInto(b *testing.B) {
	bf, _ := NewButterworth(6, 0.9, 9)
	xs := benchInput(100)
	dst := make([]float64, len(xs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = bf.FilterInto(dst, xs)
	}
}

func BenchmarkFiltFiltInto(b *testing.B) {
	bf, _ := NewButterworth(6, 0.9, 9)
	xs := benchInput(100)
	dst := make([]float64, len(xs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = FiltFiltInto(bf, xs, dst)
	}
}
