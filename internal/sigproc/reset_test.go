package sigproc

import (
	"testing"

	"locble/internal/rng"
)

// noisySeries synthesizes an RSS-like series: a level shift halfway
// through (to exercise AKF adaptation) plus Gaussian noise.
func noisySeries(n int, seed int64) []float64 {
	src := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		level := -70.0
		if i >= n/2 {
			level = -58.0
		}
		out[i] = level + src.Normal(0, 2.5)
	}
	return out
}

// TestFilterDoesNotClobberStreamingState is the regression test for the
// batch/streaming aliasing bug: a streaming pipeline that shares its
// Butterworth instance with a batch Filter (or FiltFilt) call must keep
// its live delay-line state. Before the fix, Filter reset the receiver,
// so the post-interleave streaming outputs re-primed from scratch and
// diverged from an uninterrupted run.
func TestFilterDoesNotClobberStreamingState(t *testing.T) {
	xs := noisySeries(120, 3)

	// Reference: uninterrupted streaming run.
	ref, err := NewButterworth(6, 0.9, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = ref.Process(x)
	}

	// Interleaved: same streaming run, but batch calls on the SAME
	// instance fire mid-stream.
	shared, err := NewButterworth(6, 0.9, 9)
	if err != nil {
		t.Fatal(err)
	}
	batch := noisySeries(50, 99)
	got := make([]float64, len(xs))
	for i, x := range xs {
		got[i] = shared.Process(x)
		switch i {
		case 30:
			shared.Filter(batch)
		case 60:
			FiltFilt(shared, batch)
		case 90:
			shared.GroupDelaySamples()
		}
	}

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: interleaved streaming output %g != uninterrupted %g "+
				"(batch call clobbered the live delay line)", i, got[i], want[i])
		}
	}

	// And the batch output itself must match a dedicated filter's.
	fresh, _ := NewButterworth(6, 0.9, 9)
	wantBatch := fresh.Filter(batch)
	gotBatch := shared.Filter(batch)
	for i := range wantBatch {
		if gotBatch[i] != wantBatch[i] {
			t.Fatalf("batch sample %d: %g != %g (batch pass depends on streaming state)",
				i, gotBatch[i], wantBatch[i])
		}
	}
}

// TestResetRestoresFreshBehaviour is the reset-completeness audit: for
// every sigproc filter, running a series, calling Reset, and running a
// second series must produce sample-for-sample the output of a freshly
// constructed filter on that second series.
func TestResetRestoresFreshBehaviour(t *testing.T) {
	first := noisySeries(200, 7)
	second := noisySeries(200, 11)

	type filter interface {
		Process(float64) float64
		Reset()
	}
	cases := []struct {
		name string
		mk   func() filter
	}{
		{"Biquad", func() filter {
			return &Biquad{B0: 0.2, B1: 0.4, B2: 0.2, A1: -0.5, A2: 0.3}
		}},
		{"Butterworth", func() filter {
			f, err := NewButterworth(6, 0.9, 9)
			if err != nil {
				t.Fatal(err)
			}
			return f
		}},
		{"Kalman", func() filter { return NewKalman(0.05, 2.0) }},
		{"AKF", func() filter {
			bf, err := NewButterworth(6, 0.9, 9)
			if err != nil {
				t.Fatal(err)
			}
			return NewAKF(bf)
		}},
		{"MovingAverage", func() filter { return NewMovingAverage(5) }},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			used := tc.mk()
			for _, x := range first {
				used.Process(x)
			}
			used.Reset()

			fresh := tc.mk()
			for i, x := range second {
				got, want := used.Process(x), fresh.Process(x)
				if got != want {
					t.Fatalf("sample %d: reset filter %g != fresh filter %g (incomplete Reset)",
						i, got, want)
				}
			}
		})
	}
}

// TestAKFStats checks the observability accumulator: sample counts,
// divergence detection on a level shift, and Reset clearing.
func TestAKFStats(t *testing.T) {
	bf, err := NewButterworth(6, 0.9, 9)
	if err != nil {
		t.Fatal(err)
	}
	akf := NewAKF(bf)
	xs := noisySeries(300, 5)
	akf.Filter(xs)
	s := akf.Stats()
	if s.Samples != len(xs) {
		t.Fatalf("Samples = %d, want %d", s.Samples, len(xs))
	}
	if s.Diverged == 0 {
		t.Error("want divergence detected across a 12 dB level shift")
	}
	if s.AlphaMax <= s.AlphaMean() {
		t.Errorf("AlphaMax %g should exceed AlphaMean %g on a transient",
			s.AlphaMax, s.AlphaMean())
	}
	if s.InnovAbsMax <= 0 {
		t.Error("want a positive max |innovation|")
	}
	akf.Reset()
	if got := akf.Stats(); got != (AKFStats{}) {
		t.Errorf("Stats after Reset = %+v, want zero", got)
	}
}
