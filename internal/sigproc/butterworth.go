// Package sigproc implements the signal-processing blocks of LocBLE's
// adaptive noise filter (ANF, paper Sec. 4.2): a Butterworth low-pass
// filter designed from scratch via the bilinear transform and realized as
// a cascade of biquad sections, a scalar Kalman filter, the paper's
// adaptive Kalman filter (AKF) that fuses raw RSS with the Butterworth
// output to recover the responsiveness lost to group delay, and the
// moving-average smoother the step detector uses (Sec. 5.2.1).
package sigproc

import (
	"errors"
	"fmt"
	"math"
)

// ErrFilterDesign is returned for invalid filter design parameters.
var ErrFilterDesign = errors.New("sigproc: invalid filter design")

// Biquad is one second-order IIR section in Direct Form II transposed:
//
//	y[n] = b0·x[n] + b1·x[n−1] + b2·x[n−2] − a1·y[n−1] − a2·y[n−2]
type Biquad struct {
	B0, B1, B2 float64
	A1, A2     float64
	z1, z2     float64
}

// Process filters one sample through the section.
func (q *Biquad) Process(x float64) float64 {
	y := q.B0*x + q.z1
	q.z1 = q.B1*x - q.A1*y + q.z2
	q.z2 = q.B2*x - q.A2*y
	return y
}

// Reset clears the section's delay line.
func (q *Biquad) Reset() { q.z1, q.z2 = 0, 0 }

// Butterworth is an even-order low-pass Butterworth filter realized as a
// cascade of biquads. The paper's ANF uses a 6th-order design.
type Butterworth struct {
	sections []Biquad
	order    int
	cutoffHz float64
	sampleHz float64
	primed   bool
}

// NewButterworth designs an order-N (N even, ≥2) low-pass Butterworth
// filter with the given cutoff and sampling rate, using the bilinear
// transform with frequency pre-warping.
func NewButterworth(order int, cutoffHz, sampleHz float64) (*Butterworth, error) {
	if order < 2 || order%2 != 0 {
		return nil, fmt.Errorf("%w: order %d (want even ≥ 2)", ErrFilterDesign, order)
	}
	if cutoffHz <= 0 || sampleHz <= 0 || cutoffHz >= sampleHz/2 {
		return nil, fmt.Errorf("%w: cutoff %g Hz at %g Hz sampling", ErrFilterDesign, cutoffHz, sampleHz)
	}
	// Pre-warped analog cutoff for the bilinear transform.
	warped := math.Tan(math.Pi * cutoffHz / sampleHz)
	bw := &Butterworth{order: order, cutoffHz: cutoffHz, sampleHz: sampleHz}
	n := order
	for k := 0; k < n/2; k++ {
		// Analog Butterworth pole pair angle.
		theta := math.Pi * float64(2*k+1) / float64(2*n)
		// Analog prototype section: s² + 2·sin? — use standard form
		// s² + (2·cosθ'?)… The canonical low-pass biquad from pole pair
		// with quality factor Q = 1/(2·sin? ) — derive directly:
		// poles at s = −sinθ ± j·cosθ (unit circle), section:
		// H(s) = 1 / (s² + 2·sinθ·s + 1), scaled by warped frequency.
		q := 1 / (2 * math.Sin(theta))
		// Bilinear transform of H(s) = 1/((s/w)² + (s/w)/Q + 1):
		w := warped
		k2 := w * w
		norm := 1 + w/q + k2
		bq := Biquad{
			B0: k2 / norm,
			B1: 2 * k2 / norm,
			B2: k2 / norm,
			A1: 2 * (k2 - 1) / norm,
			A2: (1 - w/q + k2) / norm,
		}
		bw.sections = append(bw.sections, bq)
	}
	return bw, nil
}

// Order returns the filter order.
func (f *Butterworth) Order() int { return f.order }

// Process filters one sample. On the very first sample the delay lines are
// primed to the input's DC value so the filter does not ring up from zero
// (RSS sits near −70 dBm, far from 0).
func (f *Butterworth) Process(x float64) float64 {
	if !f.primed {
		f.prime(x)
	}
	y := x
	for i := range f.sections {
		y = f.sections[i].Process(y)
	}
	return y
}

// prime sets each section's state so that the cascade is at steady state
// for a constant input x.
func (f *Butterworth) prime(x float64) {
	f.primed = true
	v := x
	for i := range f.sections {
		s := &f.sections[i]
		// Steady state for constant input v: y = v·(b0+b1+b2)/(1+a1+a2).
		dc := (s.B0 + s.B1 + s.B2) / (1 + s.A1 + s.A2)
		y := v * dc
		// Solve DF2T state for constant input/output:
		// z1 = y − b0·v ; z2 = b2·v − a2·y  (from the update equations).
		s.z1 = y - s.B0*v
		s.z2 = s.B2*v - s.A2*y
		v = y
	}
}

// Reset clears the filter state.
func (f *Butterworth) Reset() {
	f.primed = false
	for i := range f.sections {
		f.sections[i].Reset()
	}
}

// Clone returns an independent copy of the filter: same design, own
// delay lines. Batch helpers work on clones so they never disturb a
// live streaming instance.
func (f *Butterworth) Clone() *Butterworth {
	cp := *f
	cp.sections = append([]Biquad(nil), f.sections...)
	return &cp
}

// Filter applies the filter to a whole series, starting from a reset,
// primed state. The receiver is never mutated — a filter instance
// shared between a streaming pipeline (Process) and batch callers keeps
// its live delay-line state untouched. The pass runs on a private copy
// of the section cascade (stack-buffered up to order 16), so the only
// allocation is the output slice.
func (f *Butterworth) Filter(xs []float64) []float64 {
	return f.FilterInto(make([]float64, len(xs)), xs)
}

// FilterInto is Filter writing into dst: the batch path for hot loops
// that reuse an output buffer across calls. dst's backing array is
// reused when cap(dst) ≥ len(xs) (making the pass allocation-free) and
// reallocated otherwise; the filtered series is returned as
// dst[:len(xs)]. The in-place call f.FilterInto(xs, xs) is safe: each
// output sample is written only after the input sample at the same
// index has been read.
func (f *Butterworth) FilterInto(dst, xs []float64) []float64 {
	if cap(dst) < len(xs) {
		dst = make([]float64, len(xs))
	}
	out := dst[:len(xs)]
	if len(xs) == 0 {
		return out
	}
	var buf [8]Biquad
	var secs []Biquad
	if len(f.sections) <= len(buf) {
		secs = buf[:len(f.sections)]
	} else {
		secs = make([]Biquad, len(f.sections))
	}
	copy(secs, f.sections)
	// Reset and prime at the first sample's DC value, exactly as a
	// fresh instance's first Process call would.
	v := xs[0]
	for i := range secs {
		s := &secs[i]
		dc := (s.B0 + s.B1 + s.B2) / (1 + s.A1 + s.A2)
		y := v * dc
		s.z1 = y - s.B0*v
		s.z2 = s.B2*v - s.A2*y
		v = y
	}
	for i, x := range xs {
		y := x
		for j := range secs {
			y = secs[j].Process(y)
		}
		out[i] = y
	}
	return out
}

// GroupDelaySamples estimates the filter's low-frequency group delay in
// samples by measuring the lag of the step response's 50 % crossing. The
// AKF uses this to quantify the responsiveness it must restore. Each
// probe run is counted in obs.Default ("sigproc.groupdelay.probes") and
// its result observed ("sigproc.groupdelay.samples").
func (f *Butterworth) GroupDelaySamples() float64 {
	probe := f.Clone()
	probe.Reset()
	probe.prime(0)
	const n = 4096
	delay := float64(n)
	for i := 0; i < n; i++ {
		y := probe.Process(1)
		if y >= 0.5 {
			delay = float64(i)
			break
		}
	}
	groupDelayProbes.Inc()
	groupDelaySamples.Observe(delay)
	return delay
}

// MovingAverage is a simple sliding-window mean smoother, used by the step
// detector to smooth accelerometer magnitude (Sec. 5.2.1).
type MovingAverage struct {
	window []float64
	size   int
	idx    int
	full   bool
	sum    float64
}

// NewMovingAverage returns a smoother with the given window size (≥1).
func NewMovingAverage(size int) *MovingAverage {
	if size < 1 {
		size = 1
	}
	return &MovingAverage{window: make([]float64, size), size: size}
}

// Process pushes a sample and returns the current window mean.
func (m *MovingAverage) Process(x float64) float64 {
	if m.full {
		m.sum -= m.window[m.idx]
	}
	m.window[m.idx] = x
	m.sum += x
	m.idx++
	count := m.idx
	if m.idx == m.size {
		m.idx = 0
		m.full = true
	}
	if m.full {
		count = m.size
	}
	return m.sum / float64(count)
}

// Reset clears the window, restoring the exact fresh-smoother behaviour.
func (m *MovingAverage) Reset() {
	for i := range m.window {
		m.window[i] = 0
	}
	m.idx = 0
	m.full = false
	m.sum = 0
}

// Smooth applies the moving average to a whole series.
func Smooth(xs []float64, window int) []float64 {
	ma := NewMovingAverage(window)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = ma.Process(x)
	}
	return out
}
