package sigproc

import (
	"encoding/json"
	"math"
	"testing"
)

// shiftSeries is a deterministic RSS-like series with a level shift and
// oscillation, enough to drive the AKF's adaptation machinery.
func shiftSeries(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		level := -62.0
		if i > n/2 {
			level = -54.0 // mid-series level change exercises divergence
		}
		xs[i] = level + 3*math.Sin(float64(i)*0.7) + 1.5*math.Cos(float64(i)*2.3)
	}
	return xs
}

// TestButterworthSnapshotRestore: filter half a series, snapshot, restore
// into a fresh instance, and finish on both — outputs must be
// bit-identical to the uninterrupted run.
func TestButterworthSnapshotRestore(t *testing.T) {
	xs := shiftSeries(200)
	mk := func() *Butterworth {
		f, err := NewButterworth(6, 0.9, 9)
		if err != nil {
			t.Fatalf("NewButterworth: %v", err)
		}
		return f
	}
	ref := mk()
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = ref.Process(x)
	}

	a := mk()
	for _, x := range xs[:100] {
		a.Process(x)
	}
	st := a.Snapshot()
	// Round-trip through JSON, as a checkpoint file would.
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var st2 ButterworthState
	if err := json.Unmarshal(raw, &st2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	b := mk()
	if err := b.Restore(st2); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i, x := range xs[100:] {
		if got := b.Process(x); got != want[100+i] {
			t.Fatalf("sample %d after restore = %v, want %v", 100+i, got, want[100+i])
		}
	}
}

func TestButterworthRestoreDesignMismatch(t *testing.T) {
	a, _ := NewButterworth(6, 0.9, 9)
	b, _ := NewButterworth(4, 0.9, 9)
	if err := b.Restore(a.Snapshot()); err == nil {
		t.Fatal("restoring a 6th-order snapshot into a 4th-order filter succeeded, want error")
	}
}

func TestKalmanSnapshotRestore(t *testing.T) {
	xs := shiftSeries(120)
	ref := NewKalman(0.05, 2.0)
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = ref.Process(x)
	}
	a := NewKalman(0.05, 2.0)
	for _, x := range xs[:60] {
		a.Process(x)
	}
	b := NewKalman(0.05, 2.0)
	b.Restore(a.Snapshot())
	for i, x := range xs[60:] {
		if got := b.Process(x); got != want[60+i] {
			t.Fatalf("sample %d after restore = %v, want %v", 60+i, got, want[60+i])
		}
	}
}

// TestAKFSnapshotRestore covers the full cascade, including the adapted
// process noise and the run statistics.
func TestAKFSnapshotRestore(t *testing.T) {
	xs := shiftSeries(300)
	mk := func() *AKF {
		bf, err := NewButterworth(6, 0.9, 9)
		if err != nil {
			t.Fatalf("NewButterworth: %v", err)
		}
		return NewAKF(bf)
	}
	ref := mk()
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = ref.Process(x)
	}

	a := mk()
	for _, x := range xs[:170] { // past the level change: alpha is adapted
		a.Process(x)
	}
	raw, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var st AKFState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	b := mk()
	if err := b.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i, x := range xs[170:] {
		if got := b.Process(x); got != want[170+i] {
			t.Fatalf("sample %d after restore = %v, want %v", 170+i, got, want[170+i])
		}
	}
	// Run statistics continue, not restart.
	if got, wantN := b.Stats().Samples, ref.Stats().Samples; got != wantN {
		t.Fatalf("restored stats samples = %d, want %d", got, wantN)
	}
}
