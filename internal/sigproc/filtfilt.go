package sigproc

// FiltFilt applies the Butterworth filter forward and then backward over
// the series, yielding zero-phase (no group delay) smoothing. Streaming
// use cases need the BF+AKF cascade (delay matters for a live UI); batch
// estimation at the end of a measurement can use FiltFilt instead, which
// removes the systematic time lag between the RSS trend and the motion
// track that group delay would otherwise introduce into the regression.
func FiltFilt(bf *Butterworth, xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	fwd := bf.Filter(xs)
	// Reverse, filter, reverse back.
	rev := make([]float64, len(fwd))
	for i, v := range fwd {
		rev[len(fwd)-1-i] = v
	}
	back := bf.Filter(rev)
	out := make([]float64, len(back))
	for i, v := range back {
		out[len(back)-1-i] = v
	}
	return out
}
