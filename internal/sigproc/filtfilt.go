package sigproc

// FiltFilt applies the Butterworth filter forward and then backward over
// the series, yielding zero-phase (no group delay) smoothing. Streaming
// use cases need the BF+AKF cascade (delay matters for a live UI); batch
// estimation at the end of a measurement can use FiltFilt instead, which
// removes the systematic time lag between the RSS trend and the motion
// track that group delay would otherwise introduce into the regression.
func FiltFilt(bf *Butterworth, xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	return FiltFiltInto(bf, xs, nil)
}

// FiltFiltInto is FiltFilt writing into dst, for batch callers that
// reuse a scratch buffer across series. The forward pass, the two
// reversals, and the backward pass all run inside dst, so once dst's
// backing array has grown to the series length the whole zero-phase
// pass is allocation-free. The smoothed series is returned as
// dst[:len(xs)]; a nil or undersized dst is reallocated.
func FiltFiltInto(bf *Butterworth, xs, dst []float64) []float64 {
	dst = bf.FilterInto(dst, xs)
	reverseFloats(dst)
	dst = bf.FilterInto(dst, dst)
	reverseFloats(dst)
	return dst
}

func reverseFloats(xs []float64) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}
