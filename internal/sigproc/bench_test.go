package sigproc

import (
	"testing"

	"locble/internal/rng"
)

func benchInput(n int) []float64 {
	src := rng.New(1)
	out := make([]float64, n)
	for i := range out {
		out[i] = -70 + src.Normal(0, 3)
	}
	return out
}

func BenchmarkButterworthFilter(b *testing.B) {
	bf, _ := NewButterworth(6, 0.9, 9)
	xs := benchInput(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bf.Filter(xs)
	}
}

func BenchmarkAKFFilter(b *testing.B) {
	bf, _ := NewButterworth(6, 0.9, 9)
	akf := NewAKF(bf)
	xs := benchInput(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		akf.Filter(xs)
	}
}

func BenchmarkFiltFilt(b *testing.B) {
	bf, _ := NewButterworth(6, 0.9, 9)
	xs := benchInput(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FiltFilt(bf, xs)
	}
}
