package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"locble/internal/ble"
	"locble/internal/imu"
	"locble/internal/rf"
	"locble/internal/rng"
)

// BeaconSpec places one beacon in the world.
type BeaconSpec struct {
	// Name labels the beacon; it is encoded into the iBeacon major/minor
	// so the scanner can resolve identity from the payload.
	Name string
	X, Y float64
	// Z is the beacon's height relative to the phone's carry plane
	// (default 0: same height). A shelf-top beacon at Z = 1.5 m makes
	// every link distance a 3-D distance — a realistic error source for
	// the 2-D estimator (paper Sec. 9.3 motivates the 3-D extension).
	Z float64
	// Tx is the transmitter hardware profile (default Estimote).
	Tx rf.TxProfile
	// AdvInterval is the advertising interval (default 100 ms ⇒ 10 Hz,
	// the paper's configuration).
	AdvInterval time.Duration
	// Connectable selects ADV_IND instead of ADV_NONCONN_IND.
	Connectable bool
}

// Scenario describes one measurement run.
type Scenario struct {
	// Beacons in the world. Beacons[0] is conventionally the target.
	Beacons []BeaconSpec
	// ObserverPlan is the observer's walking plan.
	ObserverPlan imu.Plan
	// TargetPlan, when non-nil, makes Beacons[0] a moving device that
	// follows this plan (the paper's moving-target mode); its IMU trace
	// is also produced.
	TargetPlan *imu.Plan
	// Phone is the observer's receiver hardware (default iPhone 6s).
	Phone rf.DeviceProfile
	// EnvModel decides per-moment propagation (default LOS).
	EnvModel EnvModel
	// Noise configures the observer's IMU (default DefaultNoise).
	Noise *imu.Noise
	// Posture rotates the observer phone's device frame (default flat).
	Posture *imu.RotationMatrix
	// DisableCollisions turns off co-channel collision modelling (two
	// advertisements overlapping on the same channel destroy each other;
	// the paper observed the target's report rate dropping from 8 Hz to
	// ~3 Hz under interference, Sec. 6.1).
	DisableCollisions bool
	// CodedPHY models Bluetooth 5's LE Coded PHY (S=8): ~12 dB more link
	// budget, i.e. a 12 dB lower receiver sensitivity floor (the paper's
	// Sec. 9.3 "wider coverage" extension). Legacy 1M PHY otherwise.
	CodedPHY bool
	// WiFiLoad models co-existing Wi-Fi traffic in the 2.4 GHz band
	// (paper Sec. 7.2: "our indoor test environment did not rule out WiFi
	// access points"): the fraction of airtime occupied by Wi-Fi bursts,
	// 0..1. BLE advertising channels 37/38/39 sit beside Wi-Fi channels
	// 1/6/11; a BLE packet overlapping a burst on its channel is lost.
	WiFiLoad float64
	// Seed drives all randomness of the run.
	Seed int64
}

// BeaconObservation is one RSSI sighting of a beacon.
type BeaconObservation struct {
	T       float64 // seconds
	RSSI    float64 // dBm
	Channel int
	// TrueDist is the ground-truth distance at T (diagnostics only).
	TrueDist float64
	// Env is the ground-truth propagation class at T (diagnostics only).
	Env rf.Environment
}

// Trace is the complete output of one simulated measurement.
type Trace struct {
	// IMU is the observer's sensor trace (with posture applied).
	IMU *imu.Trace
	// TargetIMU is the target's sensor trace in moving-target mode.
	TargetIMU *imu.Trace
	// Observations maps beacon name → time-ordered RSSI sightings.
	Observations map[string][]BeaconObservation
	// Beacons echoes the specs (with defaults filled).
	Beacons []BeaconSpec
	// Phone echoes the receiver profile.
	Phone rf.DeviceProfile
	// Duration of the run in seconds.
	Duration float64
}

// TargetPosition returns beacon b's ground-truth position at time t
// (constant unless the scenario had a TargetPlan and b is the target).
func (tr *Trace) TargetPosition(b int, t float64) (x, y float64) {
	if b == 0 && tr.TargetIMU != nil {
		return tr.TargetIMU.PositionAt(t)
	}
	return tr.Beacons[b].X, tr.Beacons[b].Y
}

// ErrNoBeacons is returned for a scenario without beacons.
var ErrNoBeacons = errors.New("sim: scenario has no beacons")

// scheduled is one advertising event in the global simulation schedule.
type scheduled struct {
	ble.Transmission
	beacon  int
	collide bool
}

// scheduleByAt sorts the global schedule by transmission time.
type scheduleByAt []scheduled

func (s scheduleByAt) Len() int           { return len(s) }
func (s scheduleByAt) Less(i, j int) bool { return s[i].At < s[j].At }
func (s scheduleByAt) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// Run executes the scenario.
func Run(sc Scenario) (*Trace, error) {
	if len(sc.Beacons) == 0 {
		return nil, ErrNoBeacons
	}
	if sc.Phone.Name == "" {
		sc.Phone = rf.IPhone6s
	}
	if sc.EnvModel == nil {
		sc.EnvModel = StaticEnv(rf.LOS)
	}
	noise := imu.DefaultNoise()
	if sc.Noise != nil {
		noise = *sc.Noise
	}
	root := rng.New(sc.Seed)

	// Observer IMU trace.
	obsTrace, err := imu.Synthesize(sc.ObserverPlan, noise, root.Split(1))
	if err != nil {
		return nil, fmt.Errorf("sim: observer plan: %w", err)
	}

	// Target IMU trace (moving-target mode).
	var tgtTrace *imu.Trace
	if sc.TargetPlan != nil {
		tgtTrace, err = imu.Synthesize(*sc.TargetPlan, noise, root.Split(2))
		if err != nil {
			return nil, fmt.Errorf("sim: target plan: %w", err)
		}
	}

	duration := obsTrace.Duration
	if tgtTrace != nil && tgtTrace.Duration > duration {
		duration = tgtTrace.Duration
	}

	tr := &Trace{
		IMU:          obsTrace,
		TargetIMU:    tgtTrace,
		Observations: make(map[string][]BeaconObservation),
		Phone:        sc.Phone,
		Duration:     duration,
	}

	// Scanner tuned so the effective report rate matches the phone model
	// (paper Sec. 7.6.1) given the beacons' 10 Hz advertising.
	scanner := scannerFor(sc.Phone, root.Split(3))
	const codedPhyGainDB = 12
	if sc.CodedPHY {
		scanner.ReportFloorDBm -= codedPhyGainDB
	}

	// One spatial shadow field per run: co-located beacons must see
	// correlated shadowing or the clustering layer has nothing to detect.
	shadowField := rf.NewShadowField(2.0, root.Split(4))

	// Phase 1: build every beacon's advertiser and collect all
	// transmissions into one global, time-sorted schedule.
	advertisers := make([]*ble.Advertiser, len(sc.Beacons))
	channels := make([]*rf.Channel, len(sc.Beacons))
	var schedule []scheduled
	for bi := range sc.Beacons {
		spec := &sc.Beacons[bi]
		if spec.Tx.Name == "" {
			spec.Tx = rf.EstimoteBeacon
		}
		if spec.AdvInterval == 0 {
			spec.AdvInterval = 100 * time.Millisecond
		}
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("beacon-%d", bi)
		}
		linkSrc := root.Split(int64(100 + bi))

		pduType := ble.PDUAdvNonconnInd
		if spec.Connectable {
			pduType = ble.PDUAdvInd
		}
		payload := ble.IBeacon{Major: uint16(bi + 1), Minor: uint16(sc.Seed & 0xFFFF), MeasuredPower: int8(spec.Tx.TxPowerDBm)}
		copy(payload.UUID[:], []byte(fmt.Sprintf("%-16s", spec.Name)))
		adData, err := ble.SerializeADStructures(nil, payload.ADStructures())
		if err != nil {
			return nil, fmt.Errorf("sim: beacon %q payload: %w", spec.Name, err)
		}
		pdu := ble.AdvPDU{
			Type: pduType,
			AdvA: ble.AddressFromUint64(0xC00000000000 | uint64(bi+1)),
			Data: adData,
		}
		adv, err := ble.NewAdvertiser(pdu, spec.AdvInterval, linkSrc.Split(1))
		if err != nil {
			return nil, fmt.Errorf("sim: beacon %q: %w", spec.Name, err)
		}
		advertisers[bi] = adv

		ch := rf.NewChannel(rf.LOS, spec.Tx, sc.Phone, linkSrc.Split(2))
		ch.SetShadowField(shadowField)
		if sc.CodedPHY {
			ch.SetSensitivityFloor(-105 - codedPhyGainDB)
		}
		channels[bi] = ch

		for _, tx := range adv.EventsUntil(time.Duration(duration * float64(time.Second))) {
			schedule = append(schedule, scheduled{Transmission: tx, beacon: bi})
		}
	}
	// Typed sort: this slice holds one entry per advertising event across
	// every beacon (thousands for long scenarios), and the reflection
	// swapper behind sort.Slice showed up in pipeline profiles.
	sort.Sort(scheduleByAt(schedule))

	// Wi-Fi interference: per-channel busy intervals. Bursts arrive
	// Poisson at a rate matching the configured load with ~1.5 ms mean
	// length (typical aggregate frame airtime).
	var wifiBusy [3][][2]time.Duration
	if sc.WiFiLoad > 0 {
		load := math.Min(sc.WiFiLoad, 0.95)
		wifiSrc := root.Split(5)
		const meanBurst = 1500 * time.Microsecond
		horizon := time.Duration(duration * float64(time.Second))
		// Mean idle gap such that busy/(busy+gap) = load.
		meanGap := meanBurst.Seconds() * (1 - load) / load
		rate := 1 / meanGap // gap arrivals per second per channel
		for chIdx := 0; chIdx < 3; chIdx++ {
			t := time.Duration(0)
			for t < horizon {
				gap := time.Duration(wifiSrc.Exponential(rate) * float64(time.Second))
				burst := time.Duration(wifiSrc.Exponential(1/meanBurst.Seconds()) * float64(time.Second))
				start := t + gap
				wifiBusy[chIdx] = append(wifiBusy[chIdx], [2]time.Duration{start, start + burst})
				t = start + burst
			}
		}
	}
	wifiBlocked := func(at time.Duration, ch int) bool {
		busy := wifiBusy[ch-37]
		// Binary search over sorted intervals.
		lo, hi := 0, len(busy)
		for lo < hi {
			mid := (lo + hi) / 2
			if busy[mid][1] < at {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(busy) && busy[lo][0] <= at
	}

	// Phase 2: co-channel collisions — a legacy advertisement occupies
	// the air for ~0.4 ms; two packets overlapping on the same channel
	// destroy each other at the receiver (the paper observed the target's
	// report rate dropping under interference, Sec. 6.1).
	if !sc.DisableCollisions {
		const airtime = 400 * time.Microsecond
		for i := 1; i < len(schedule); i++ {
			for j := i - 1; j >= 0; j-- {
				if schedule[i].At-schedule[j].At > airtime {
					break
				}
				if schedule[i].Channel == schedule[j].Channel && schedule[i].beacon != schedule[j].beacon {
					schedule[i].collide = true
					schedule[j].collide = true
				}
			}
		}
	}

	// Phase 3: deliver the surviving transmissions through the scanner
	// and the per-link radio channel.
	for _, txe := range schedule {
		if txe.collide {
			continue
		}
		if sc.WiFiLoad > 0 && wifiBlocked(txe.At, txe.Channel) {
			continue
		}
		bi := txe.beacon
		spec := &sc.Beacons[bi]
		t := txe.At.Seconds()
		if !scanner.Hears(txe.At, txe.Channel) {
			continue
		}
		ox, oy := obsTrace.PositionAt(t)
		bx, by := spec.X, spec.Y
		if bi == 0 && tgtTrace != nil {
			bx, by = tgtTrace.PositionAt(t)
		}
		envClass := sc.EnvModel.Env(t, ox, oy, bx, by)
		ch := channels[bi]
		ch.SetEnvironment(envClass)

		planar := math.Hypot(ox-bx, oy-by)
		dz := spec.Z - obsTrace.HeightAt(t)
		d := math.Hypot(planar, dz)
		heading := obsTrace.HeadingAt(t)
		rssi := ch.SampleLink(ox, oy, bx, by, heading, txe.Channel) // shadow/body from planar geometry
		if dz != 0 {
			// Correct the path loss for the true 3-D distance (the field
			// and body terms depend on planar geometry; the mean loss on
			// the slant range).
			rssi += 10 * ch.Params().PathLossExponent * (math.Log10(math.Max(planar, 0.1)) - math.Log10(math.Max(d, 0.1)))
		}

		// Round-trip through the byte-level codec: the frame is built,
		// whitened, CRC'd, then received and decoded — exercising the
		// same parsing path a real sniffer-stack would.
		frame, err := advertisers[bi].Frame(txe.Channel)
		if err != nil {
			return nil, fmt.Errorf("sim: frame: %w", err)
		}
		report, err := scanner.Receive(txe.At, txe.Channel, frame, rssi)
		if err != nil {
			if errors.Is(err, ble.ErrBelowFloor) {
				continue
			}
			return nil, fmt.Errorf("sim: receive: %w", err)
		}
		_ = report // identity verified via payload; we key by spec name
		tr.Observations[spec.Name] = append(tr.Observations[spec.Name], BeaconObservation{
			T:        t,
			RSSI:     rssi,
			Channel:  txe.Channel,
			TrueDist: d,
			Env:      envClass,
		})
	}
	tr.Beacons = sc.Beacons

	if sc.Posture != nil {
		tr.IMU.ApplyPosture(*sc.Posture)
	}
	return tr, nil
}

// scannerFor builds a scanner whose effective report rate approximates the
// device profile's SampleRateHz under 10 Hz advertising.
func scannerFor(p rf.DeviceProfile, src *rng.Source) *ble.Scanner {
	s := ble.NewScanner(src)
	want := p.SampleRateHz
	if want <= 0 || want >= 10 {
		s.DropProb = 0.02
		return s
	}
	s.DropProb = 1 - want/10.0
	return s
}

// RSSSeries extracts aligned (t, rssi) slices for one beacon.
func (tr *Trace) RSSSeries(name string) (ts, rss []float64) {
	obs := tr.Observations[name]
	ts = make([]float64, len(obs))
	rss = make([]float64, len(obs))
	for i, o := range obs {
		ts[i] = o.T
		rss[i] = o.RSSI
	}
	return ts, rss
}
