package sim

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// traceFileVersion guards the on-disk format.
const traceFileVersion = 1

// traceFile is the serialized form of a Trace. All substructures use
// exported fields, so plain JSON round-trips losslessly; the envelope
// adds a version for forward compatibility.
type traceFile struct {
	Version int    `json:"version"`
	Trace   *Trace `json:"trace"`
}

// SaveTrace writes the trace as gzip-compressed JSON. Saved traces make
// the offline-estimation workflow possible: record once (or generate with
// cmd/locble-trace), then analyze repeatedly without re-simulating.
func SaveTrace(w io.Writer, tr *Trace) error {
	gz := gzip.NewWriter(w)
	enc := json.NewEncoder(gz)
	if err := enc.Encode(traceFile{Version: traceFileVersion, Trace: tr}); err != nil {
		gz.Close()
		return fmt.Errorf("sim: encode trace: %w", err)
	}
	return gz.Close()
}

// LoadTrace reads a trace written by SaveTrace.
func LoadTrace(r io.Reader) (*Trace, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("sim: open trace: %w", err)
	}
	defer gz.Close()
	var tf traceFile
	if err := json.NewDecoder(gz).Decode(&tf); err != nil {
		return nil, fmt.Errorf("sim: decode trace: %w", err)
	}
	if tf.Version != traceFileVersion {
		return nil, fmt.Errorf("sim: unsupported trace version %d", tf.Version)
	}
	if tf.Trace == nil {
		return nil, fmt.Errorf("sim: trace file has no trace")
	}
	if err := validateTrace(tf.Trace); err != nil {
		return nil, err
	}
	return tf.Trace, nil
}

// validateTrace sanity-checks a loaded trace before it reaches the
// pipeline (a truncated or hand-edited file should fail fast, not panic
// deep inside estimation).
func validateTrace(tr *Trace) error {
	if tr.IMU == nil || len(tr.IMU.Samples) == 0 {
		return fmt.Errorf("sim: trace has no IMU samples")
	}
	if len(tr.IMU.Truth) != len(tr.IMU.Samples) {
		return fmt.Errorf("sim: trace IMU truth/sample length mismatch (%d vs %d)",
			len(tr.IMU.Truth), len(tr.IMU.Samples))
	}
	if len(tr.Observations) == 0 {
		return fmt.Errorf("sim: trace has no observations")
	}
	var bad []string
	for name, obs := range tr.Observations {
		for i := 1; i < len(obs); i++ {
			if obs[i].T < obs[i-1].T {
				bad = append(bad, name)
				break
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("sim: out-of-order observations for %s", strings.Join(bad, ", "))
	}
	return nil
}
