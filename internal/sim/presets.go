package sim

import (
	"locble/internal/rf"
	"locble/internal/rng"
)

// Preset reproduces one of the paper's nine experimental environments
// (Table 1).
type Preset struct {
	Index int
	Name  string
	// W, H are the room dimensions in metres ("Scale" row of Table 1).
	W, H float64
	// Outdoor marks environment #9 (parking lot).
	Outdoor bool
	// PaperAccuracy is the paper's reported mean accuracy in metres
	// (Table 1, 5th row) — the reproduction target.
	PaperAccuracy float64
	// PaperCI is the paper's 75 %-confidence half-width in metres.
	PaperCI float64
	// PaperDistance is the observer→target distance used in the
	// stationary-target experiment (Sec. 7.4.1) where given.
	PaperDistance float64
	// Clutter scales how many blocking walls/racks the room gets.
	Clutter int
	// PasserbyRate is the rate of human p-LOS episodes per second.
	PasserbyRate float64
}

// Presets returns the nine Table 1 environments. The paper's distances
// for environments #1–#6 come from Sec. 7.4.1 (4.5, 6.4, 6.7, 6.8, 9.1,
// 7.9 m); #7–#9 are exercised by the clustering and moving-target
// experiments.
func Presets() []Preset {
	return []Preset{
		{Index: 1, Name: "Meeting room", W: 5, H: 5, PaperAccuracy: 0.8, PaperCI: 0.2, PaperDistance: 4.5, Clutter: 0, PasserbyRate: 0.00},
		{Index: 2, Name: "Hallway", W: 8, H: 3, PaperAccuracy: 1.4, PaperCI: 0.3, PaperDistance: 6.4, Clutter: 1, PasserbyRate: 0.02},
		{Index: 3, Name: "Bedroom", W: 7, H: 7, PaperAccuracy: 1.4, PaperCI: 0.4, PaperDistance: 6.7, Clutter: 1, PasserbyRate: 0.00},
		{Index: 4, Name: "Living room", W: 7, H: 7, PaperAccuracy: 1.6, PaperCI: 0.3, PaperDistance: 6.8, Clutter: 1, PasserbyRate: 0.02},
		{Index: 5, Name: "Restaurant", W: 9, H: 10, PaperAccuracy: 1.6, PaperCI: 0.4, PaperDistance: 9.1, Clutter: 2, PasserbyRate: 0.05},
		{Index: 6, Name: "Store", W: 9, H: 10, PaperAccuracy: 1.8, PaperCI: 0.6, PaperDistance: 7.9, Clutter: 3, PasserbyRate: 0.05},
		{Index: 7, Name: "Labs", W: 8, H: 10, PaperAccuracy: 2.3, PaperCI: 0.5, PaperDistance: 8.5, Clutter: 4, PasserbyRate: 0.02},
		{Index: 8, Name: "Hall", W: 9, H: 11, PaperAccuracy: 2.1, PaperCI: 0.5, PaperDistance: 9.0, Clutter: 3, PasserbyRate: 0.05},
		{Index: 9, Name: "Parking lot", W: 16, H: 15, Outdoor: true, PaperAccuracy: 1.2, PaperCI: 0.5, PaperDistance: 7.0, Clutter: 0, PasserbyRate: 0.00},
	}
}

// PresetByIndex returns the Table 1 environment with the given index.
func PresetByIndex(i int) (Preset, bool) {
	for _, p := range Presets() {
		if p.Index == i {
			return p, true
		}
	}
	return Preset{}, false
}

// EnvModelFor builds the propagation model of a preset: Clutter blocking
// segments placed pseudo-randomly in the room (racks → NLOS, light
// furniture → p-LOS), wrapped with passer-by episodes when the preset has
// foot traffic. Outdoor presets are clean LOS.
func (p Preset) EnvModelFor(src *rng.Source) EnvModel {
	if p.Outdoor || p.Clutter == 0 && p.PasserbyRate == 0 {
		return StaticEnv(rf.LOS)
	}
	var base EnvModel = StaticEnv(rf.LOS)
	if p.Clutter > 0 {
		we := &WallEnv{}
		for i := 0; i < p.Clutter; i++ {
			// Each obstacle is a segment across a band of the room.
			cx := src.Uniform(0.2*p.W, 0.8*p.W)
			cy := src.Uniform(0.2*p.H, 0.8*p.H)
			length := src.Uniform(0.2*p.W, 0.5*p.W)
			class := rf.PLOS
			if src.Bool(0.5) {
				class = rf.NLOS
			}
			if src.Bool(0.5) {
				we.Walls = append(we.Walls, Wall{X1: cx - length/2, Y1: cy, X2: cx + length/2, Y2: cy, Class: class})
			} else {
				we.Walls = append(we.Walls, Wall{X1: cx, Y1: cy - length/2, X2: cx, Y2: cy + length/2, Class: class})
			}
		}
		base = we
	}
	if p.PasserbyRate > 0 {
		base = NewPasserbyEnv(base, p.PasserbyRate, 1.5, src)
	}
	return base
}
