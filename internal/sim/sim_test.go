package sim

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"math"
	"testing"

	"locble/internal/imu"
	"locble/internal/rf"
	"locble/internal/rng"
)

func basicScenario(seed int64) Scenario {
	return Scenario{
		Beacons:      []BeaconSpec{{Name: "b", X: 5, Y: 2}},
		ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
		EnvModel:     StaticEnv(rf.LOS),
		Seed:         seed,
	}
}

func TestRunProducesObservations(t *testing.T) {
	tr, err := Run(basicScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	obs := tr.Observations["b"]
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	// ~9 Hz effective rate over ~9 s.
	rate := float64(len(obs)) / tr.Duration
	if rate < 7 || rate > 10 {
		t.Errorf("report rate = %.1f Hz, want ≈9", rate)
	}
	// Observations are time ordered and carry valid channels.
	for i, o := range obs {
		if o.Channel < 37 || o.Channel > 39 {
			t.Fatalf("bad channel %d", o.Channel)
		}
		if i > 0 && o.T < obs[i-1].T {
			t.Fatal("observations out of order")
		}
		if o.RSSI > -20 || o.RSSI < -110 {
			t.Fatalf("implausible RSSI %g", o.RSSI)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Scenario{}); !errors.Is(err, ErrNoBeacons) {
		t.Errorf("want ErrNoBeacons, got %v", err)
	}
	sc := basicScenario(1)
	sc.ObserverPlan = imu.Plan{}
	if _, err := Run(sc); err == nil {
		t.Error("want error for empty observer plan")
	}
}

func TestRSSTrendFollowsDistance(t *testing.T) {
	// Observer walks straight toward the beacon: mean RSS of the last
	// quarter must exceed the first quarter.
	sc := Scenario{
		Beacons:      []BeaconSpec{{Name: "b", X: 10, Y: 0}},
		ObserverPlan: imu.Plan{Segments: []imu.Segment{{Heading: 0, Distance: 7}}},
		EnvModel:     StaticEnv(rf.LOS),
		Seed:         2,
	}
	tr, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	obs := tr.Observations["b"]
	q := len(obs) / 4
	var first, last float64
	for i := 0; i < q; i++ {
		first += obs[i].RSSI
		last += obs[len(obs)-1-i].RSSI
	}
	if last <= first {
		t.Errorf("RSS did not rise while approaching: first %.1f last %.1f", first/float64(q), last/float64(q))
	}
}

func TestDeviceSampleRates(t *testing.T) {
	// Nexus 6P (8 Hz) must deliver fewer reports than an iPhone 6s (9 Hz).
	rate := func(p rf.DeviceProfile) float64 {
		sc := basicScenario(3)
		sc.Phone = p
		tr, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return float64(len(tr.Observations["b"])) / tr.Duration
	}
	ip := rate(rf.IPhone6s)
	nx := rate(rf.Nexus6P)
	if nx >= ip {
		t.Errorf("Nexus rate %.2f should be below iPhone rate %.2f", nx, ip)
	}
}

func TestMultipleBeacons(t *testing.T) {
	sc := basicScenario(4)
	sc.Beacons = append(sc.Beacons, BeaconSpec{Name: "c", X: 1, Y: 6}, BeaconSpec{X: 2, Y: 2})
	tr, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Observations) != 3 {
		t.Fatalf("observations for %d beacons, want 3", len(tr.Observations))
	}
	if _, ok := tr.Observations["beacon-2"]; !ok {
		t.Error("unnamed beacon should get a default name")
	}
}

func TestMovingTargetPositions(t *testing.T) {
	tgt := imu.Plan{Segments: []imu.Segment{{Heading: 0, Distance: 3}}, StartX: 5, StartY: 5}
	sc := basicScenario(5)
	sc.TargetPlan = &tgt
	tr, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TargetIMU == nil {
		t.Fatal("moving-target trace missing TargetIMU")
	}
	x0, y0 := tr.TargetPosition(0, 0)
	if math.Hypot(x0-5, y0-5) > 0.2 {
		t.Errorf("target initial position (%g, %g)", x0, y0)
	}
	x1, _ := tr.TargetPosition(0, 1e9)
	if x1 <= x0+2 {
		t.Errorf("target did not move: %g → %g", x0, x1)
	}
}

func TestTrueDistDiagnostics(t *testing.T) {
	tr, err := Run(basicScenario(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range tr.Observations["b"] {
		ox, oy := tr.IMU.PositionAt(o.T)
		want := math.Hypot(ox-5, oy-2)
		if math.Abs(o.TrueDist-want) > 1e-9 {
			t.Fatalf("TrueDist %g, recomputed %g", o.TrueDist, want)
		}
	}
}

func TestRSSSeries(t *testing.T) {
	tr, _ := Run(basicScenario(7))
	ts, rss := tr.RSSSeries("b")
	if len(ts) != len(rss) || len(ts) != len(tr.Observations["b"]) {
		t.Error("RSSSeries shape mismatch")
	}
	if ts2, _ := tr.RSSSeries("missing"); len(ts2) != 0 {
		t.Error("missing beacon should give empty series")
	}
}

func TestWallEnvBlocksLink(t *testing.T) {
	we := &WallEnv{Walls: []Wall{{X1: 2, Y1: -5, X2: 2, Y2: 5, Class: rf.NLOS}}}
	if e := we.Env(0, 0, 0, 4, 0); e != rf.NLOS {
		t.Errorf("link crossing the wall = %v", e)
	}
	if e := we.Env(0, 3, 0, 4, 0); e != rf.LOS {
		t.Errorf("link beside the wall = %v", e)
	}
	// Worst wall wins.
	we2 := &WallEnv{Walls: []Wall{
		{X1: 1, Y1: -5, X2: 1, Y2: 5, Class: rf.PLOS},
		{X1: 2, Y1: -5, X2: 2, Y2: 5, Class: rf.NLOS},
	}}
	if e := we2.Env(0, 0, 0, 4, 0); e != rf.NLOS {
		t.Errorf("worst wall should win: %v", e)
	}
}

func TestPasserbyEnvInjectsPLOS(t *testing.T) {
	p := NewPasserbyEnv(StaticEnv(rf.LOS), 0.5, 1.0, rng.New(8))
	sawPLOS := false
	for tm := 0.0; tm < 60; tm += 0.1 {
		if p.Env(tm, 0, 0, 5, 0) == rf.PLOS {
			sawPLOS = true
			break
		}
	}
	if !sawPLOS {
		t.Error("passerby env never produced p-LOS in 60 s at rate 0.5/s")
	}
	// It must not improve NLOS.
	p2 := NewPasserbyEnv(StaticEnv(rf.NLOS), 5, 2, rng.New(9))
	for tm := 0.0; tm < 10; tm += 0.5 {
		if p2.Env(tm, 0, 0, 5, 0) != rf.NLOS {
			t.Fatal("passerby must not improve an NLOS link")
		}
	}
}

func TestScheduleEnv(t *testing.T) {
	s := &ScheduleEnv{Times: []float64{0, 5}, Classes: []rf.Environment{rf.NLOS, rf.LOS}}
	if s.Env(2, 0, 0, 0, 0) != rf.NLOS {
		t.Error("t=2 should be NLOS")
	}
	if s.Env(7, 0, 0, 0, 0) != rf.LOS {
		t.Error("t=7 should be LOS")
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 9 {
		t.Fatalf("%d presets, want 9 (Table 1)", len(ps))
	}
	if ps[8].Outdoor != true || ps[8].Name != "Parking lot" {
		t.Error("preset #9 should be the outdoor parking lot")
	}
	if _, ok := PresetByIndex(5); !ok {
		t.Error("PresetByIndex(5) missing")
	}
	if _, ok := PresetByIndex(99); ok {
		t.Error("PresetByIndex(99) should not exist")
	}
	for _, p := range ps {
		if p.PaperAccuracy <= 0 || p.W <= 0 || p.H <= 0 {
			t.Errorf("preset %d has invalid fields: %+v", p.Index, p)
		}
		m := p.EnvModelFor(rng.New(int64(p.Index)))
		if m == nil {
			t.Errorf("preset %d has nil env model", p.Index)
		}
	}
}

func TestSegmentsIntersect(t *testing.T) {
	if !segmentsIntersect(0, 0, 4, 4, 0, 4, 4, 0) {
		t.Error("crossing diagonals should intersect")
	}
	if segmentsIntersect(0, 0, 1, 1, 2, 2, 3, 3) {
		t.Error("disjoint collinear segments should not intersect")
	}
	if !segmentsIntersect(0, 0, 2, 2, 1, 1, 3, 3) {
		t.Error("overlapping collinear segments should intersect")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, err := Run(basicScenario(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(basicScenario(42))
	if err != nil {
		t.Fatal(err)
	}
	oa, ob := a.Observations["b"], b.Observations["b"]
	if len(oa) != len(ob) {
		t.Fatalf("different lengths %d vs %d", len(oa), len(ob))
	}
	for i := range oa {
		if oa[i].RSSI != ob[i].RSSI || oa[i].T != ob[i].T {
			t.Fatal("same seed must reproduce the trace exactly")
		}
	}
}

func TestCollisionsReduceReportRate(t *testing.T) {
	// A dense deployment sharing the 3 advertising channels collides;
	// the target's effective report rate must drop relative to a solo
	// run (the paper observed ~8 Hz → ~3 Hz under interference).
	solo := basicScenario(9)
	soloTr, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	dense := basicScenario(9)
	for i := 0; i < 30; i++ {
		dense.Beacons = append(dense.Beacons, BeaconSpec{
			Name: fmt.Sprintf("x%d", i), X: float64(i%6) + 1, Y: float64(i / 6),
		})
	}
	denseTr, err := Run(dense)
	if err != nil {
		t.Fatal(err)
	}
	soloRate := float64(len(soloTr.Observations["b"])) / soloTr.Duration
	denseRate := float64(len(denseTr.Observations["b"])) / denseTr.Duration
	t.Logf("solo %.1f Hz vs dense %.1f Hz", soloRate, denseRate)
	if denseRate >= soloRate {
		t.Errorf("interference did not reduce the report rate: %.1f vs %.1f Hz", denseRate, soloRate)
	}

	// Disabling collisions restores the rate.
	dense.DisableCollisions = true
	cleanTr, err := Run(dense)
	if err != nil {
		t.Fatal(err)
	}
	cleanRate := float64(len(cleanTr.Observations["b"])) / cleanTr.Duration
	if cleanRate <= denseRate {
		t.Errorf("DisableCollisions did not restore the rate: %.1f vs %.1f Hz", cleanRate, denseRate)
	}
}

func TestTracePersistenceRoundTrip(t *testing.T) {
	tr, err := Run(basicScenario(21))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != tr.Duration || len(got.IMU.Samples) != len(tr.IMU.Samples) {
		t.Error("round trip changed IMU shape")
	}
	oa, ob := tr.Observations["b"], got.Observations["b"]
	if len(oa) != len(ob) {
		t.Fatalf("observation count %d vs %d", len(oa), len(ob))
	}
	for i := range oa {
		if oa[i].RSSI != ob[i].RSSI || oa[i].T != ob[i].T || oa[i].Channel != ob[i].Channel {
			t.Fatal("observation round trip mismatch")
		}
	}
	if got.Phone.Name != tr.Phone.Name {
		t.Error("phone profile lost")
	}
}

func TestLoadTraceRejectsGarbage(t *testing.T) {
	if _, err := LoadTrace(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Error("want error for non-gzip input")
	}
	// Valid gzip, invalid payload.
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write([]byte(`{"version":1,"trace":{}}`))
	gz.Close()
	if _, err := LoadTrace(&buf); err == nil {
		t.Error("want error for empty trace")
	}
	// Wrong version.
	var buf2 bytes.Buffer
	gz2 := gzip.NewWriter(&buf2)
	gz2.Write([]byte(`{"version":99}`))
	gz2.Close()
	if _, err := LoadTrace(&buf2); err == nil {
		t.Error("want error for wrong version")
	}
}

func TestBeaconHeightWeakensSignal(t *testing.T) {
	// A shelf-top beacon (Z = 2 m) is effectively farther: mean RSS must
	// drop relative to a same-plane beacon at the same (x, y).
	flat := basicScenario(30)
	flatTr, err := Run(flat)
	if err != nil {
		t.Fatal(err)
	}
	high := basicScenario(30)
	high.Beacons[0].Z = 2.0
	highTr, err := Run(high)
	if err != nil {
		t.Fatal(err)
	}
	meanRSS := func(tr *Trace) float64 {
		var s float64
		obs := tr.Observations["b"]
		for _, o := range obs {
			s += o.RSSI
		}
		return s / float64(len(obs))
	}
	mf, mh := meanRSS(flatTr), meanRSS(highTr)
	if mh >= mf {
		t.Errorf("elevated beacon should read weaker: flat %.1f vs high %.1f dBm", mf, mh)
	}
	// TrueDist must report the 3-D slant range.
	o := highTr.Observations["b"][0]
	ox, oy := highTr.IMU.PositionAt(o.T)
	planar := math.Hypot(ox-5, oy-2)
	want := math.Hypot(planar, 2.0)
	if math.Abs(o.TrueDist-want) > 1e-9 {
		t.Errorf("TrueDist %g, want slant %g", o.TrueDist, want)
	}
}

func TestWiFiLoadReducesReportRate(t *testing.T) {
	clean := basicScenario(40)
	cleanTr, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	busy := basicScenario(40)
	busy.WiFiLoad = 0.5
	busyTr, err := Run(busy)
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(len(cleanTr.Observations["b"])) / cleanTr.Duration
	br := float64(len(busyTr.Observations["b"])) / busyTr.Duration
	t.Logf("clean %.1f Hz vs 50%% WiFi load %.1f Hz", cr, br)
	// Half the airtime busy → roughly half the packets lost.
	if br > cr*0.75 {
		t.Errorf("WiFi load barely reduced the rate: %.1f vs %.1f Hz", br, cr)
	}
	if br < cr*0.25 {
		t.Errorf("WiFi load over-aggressive: %.1f vs %.1f Hz", br, cr)
	}
}
