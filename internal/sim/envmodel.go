// Package sim is the world simulator for LocBLE experiments: it places
// beacons and a walking observer (and optionally a walking target) in an
// environment, runs the BLE advertising/scanning machinery over the rf
// channel, and produces the exact inputs a phone app would see — scan
// reports with RSSI plus IMU samples — together with ground truth.
package sim

import (
	"math"

	"locble/internal/rf"
	"locble/internal/rng"
)

// EnvModel decides the propagation class of the observer↔beacon link at a
// given moment. It abstracts walls, racks and passers-by.
type EnvModel interface {
	// Env returns the environment for the link between the observer at
	// (ox, oy) and the beacon at (bx, by) at time t (seconds).
	Env(t, ox, oy, bx, by float64) rf.Environment
}

// StaticEnv is a constant propagation class.
type StaticEnv rf.Environment

// Env implements EnvModel.
func (s StaticEnv) Env(_, _, _, _, _ float64) rf.Environment { return rf.Environment(s) }

// Wall is a blocking segment: links crossing it are NLOS (or PLOS for
// low-blocking materials like glass).
type Wall struct {
	X1, Y1, X2, Y2 float64
	// Class is the environment imposed when the wall blocks the link
	// (NLOS for concrete, PLOS for glass/wood).
	Class rf.Environment
}

// WallEnv models an environment with blocking segments; the link is LOS
// unless a wall intersects it (the most blocking wall wins).
type WallEnv struct {
	Walls []Wall
}

// Env implements EnvModel.
func (w *WallEnv) Env(_, ox, oy, bx, by float64) rf.Environment {
	worst := rf.LOS
	for _, wall := range w.Walls {
		if segmentsIntersect(ox, oy, bx, by, wall.X1, wall.Y1, wall.X2, wall.Y2) {
			if wall.Class > worst {
				worst = wall.Class
			}
		}
	}
	return worst
}

// PasserbyEnv wraps another model and injects random partial-LOS episodes
// (people walking through the link), as in the paper's Fig. 5 experiment
// where "people randomly come in between during the observer's movement
// to form p-LOS paths".
type PasserbyEnv struct {
	Base EnvModel
	// Rate is the episode arrival rate (episodes per second).
	Rate float64
	// Duration is the mean episode length (seconds).
	Duration float64

	src      *rng.Source
	episodes [][2]float64 // generated lazily up to horizon
	horizon  float64
}

// NewPasserbyEnv wraps base with Poisson-arriving p-LOS episodes.
func NewPasserbyEnv(base EnvModel, rate, duration float64, src *rng.Source) *PasserbyEnv {
	return &PasserbyEnv{Base: base, Rate: rate, Duration: duration, src: src}
}

// Env implements EnvModel.
func (p *PasserbyEnv) Env(t, ox, oy, bx, by float64) rf.Environment {
	for p.horizon <= t {
		gap := p.src.Exponential(p.Rate)
		start := p.horizon + gap
		dur := p.src.Exponential(1 / p.Duration)
		p.episodes = append(p.episodes, [2]float64{start, start + dur})
		p.horizon = start + dur
	}
	base := p.Base.Env(t, ox, oy, bx, by)
	for _, ep := range p.episodes {
		if t >= ep[0] && t < ep[1] {
			// A body only worsens LOS links; it cannot improve NLOS.
			if base < rf.PLOS {
				return rf.PLOS
			}
			return base
		}
	}
	return base
}

// ScheduleEnv switches the class at fixed times regardless of geometry:
// phases[i] applies from Times[i] until Times[i+1].
type ScheduleEnv struct {
	Times   []float64
	Classes []rf.Environment
}

// Env implements EnvModel.
func (s *ScheduleEnv) Env(t, _, _, _, _ float64) rf.Environment {
	cur := s.Classes[0]
	for i, start := range s.Times {
		if t >= start {
			cur = s.Classes[i]
		}
	}
	return cur
}

// segmentsIntersect reports proper or touching intersection of segments
// AB and CD.
func segmentsIntersect(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
	d1 := cross(dx-cx, dy-cy, ax-cx, ay-cy)
	d2 := cross(dx-cx, dy-cy, bx-cx, by-cy)
	d3 := cross(bx-ax, by-ay, cx-ax, cy-ay)
	d4 := cross(bx-ax, by-ay, dx-ax, dy-ay)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	onSeg := func(px, py, qx, qy, rx, ry float64) bool {
		return math.Min(px, qx) <= rx && rx <= math.Max(px, qx) &&
			math.Min(py, qy) <= ry && ry <= math.Max(py, qy)
	}
	switch {
	case d1 == 0 && onSeg(cx, cy, dx, dy, ax, ay):
		return true
	case d2 == 0 && onSeg(cx, cy, dx, dy, bx, by):
		return true
	case d3 == 0 && onSeg(ax, ay, bx, by, cx, cy):
		return true
	case d4 == 0 && onSeg(ax, ay, bx, by, dx, dy):
		return true
	}
	return false
}

func cross(ax, ay, bx, by float64) float64 { return ax*by - ay*bx }
