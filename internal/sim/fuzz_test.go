package sim

import (
	"bytes"
	"compress/gzip"
	"testing"

	"locble/internal/imu"
	"locble/internal/rf"
)

// fuzzSeedTrace builds a minimal structurally valid trace for the seed
// corpus without running the simulator (fuzz seeds must be cheap).
func fuzzSeedTrace() *Trace {
	return &Trace{
		IMU: &imu.Trace{
			Samples: []imu.Sample{{T: 0}, {T: 0.01}, {T: 0.02}},
			Truth:   []imu.Pose{{T: 0}, {T: 0.01}, {T: 0.02}},
		},
		Observations: map[string][]BeaconObservation{
			"b": {{T: 0.1, RSSI: -60}, {T: 0.2, RSSI: -61}},
		},
		Beacons:  []BeaconSpec{{Name: "b", X: 1, Y: 2}},
		Phone:    rf.IPhone6s,
		Duration: 1,
	}
}

// gzipped compresses raw bytes the way SaveTrace's envelope would.
func gzipped(raw []byte) []byte {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write(raw)
	gz.Close()
	return buf.Bytes()
}

// FuzzLoadTrace shakes the trace decoder with corrupted inputs: any
// byte stream must produce either a valid trace or an error — never a
// panic, and never a nil trace with a nil error (a truncated or
// hand-edited file must fail fast, not crash deep inside estimation).
func FuzzLoadTrace(f *testing.F) {
	var valid bytes.Buffer
	if err := SaveTrace(&valid, fuzzSeedTrace()); err != nil {
		f.Fatalf("SaveTrace seed: %v", err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2]) // truncated gzip stream
	f.Add([]byte{})
	f.Add([]byte("not gzip at all"))
	f.Add([]byte{0x1f, 0x8b}) // gzip magic, nothing else
	f.Add(gzipped([]byte(`{`)))
	f.Add(gzipped([]byte(`{"version":99,"trace":{}}`)))
	f.Add(gzipped([]byte(`{"version":1}`)))
	f.Add(gzipped([]byte(`{"version":1,"trace":{}}`)))
	f.Add(gzipped([]byte(`{"version":1,"trace":{"IMU":{"Samples":[{"T":0}],"Truth":[]},"Observations":{"b":[{"T":2},{"T":1}]}}}`)))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := LoadTrace(bytes.NewReader(data))
		if err == nil && tr == nil {
			t.Fatal("LoadTrace returned nil trace and nil error")
		}
		if err == nil {
			// A trace the loader accepted must satisfy its own validator.
			if verr := validateTrace(tr); verr != nil {
				t.Fatalf("LoadTrace accepted a trace its validator rejects: %v", verr)
			}
		}
	})
}
