// Package rng provides seeded, reproducible random streams with the
// distributions the RF-channel and sensor simulators need: uniform,
// Gaussian, Rayleigh and Rician. Every simulator in this repository draws
// from an explicit *rng.Source so that experiments are deterministic given
// a seed — there is no global random state.
package rng

import (
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It is not safe for concurrent
// use; create one Source per goroutine (Split derives independent streams).
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives a new, statistically independent Source from s, keyed by
// label so repeated Split calls with distinct labels do not collide.
func (s *Source) Split(label int64) *Source {
	// SplitMix-style mixing of the parent draw with the label.
	z := uint64(s.r.Int63()) ^ (uint64(label) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return New(int64(z))
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*s.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Normal returns a draw from N(mu, sigma²).
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.r.NormFloat64()
}

// Rayleigh returns a draw from the Rayleigh distribution with scale sigma.
// Rayleigh fading models the envelope of a rich-multipath (NLOS) channel.
func (s *Source) Rayleigh(sigma float64) float64 {
	u := s.r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return sigma * math.Sqrt(-2*math.Log(1-u))
}

// Rician returns a draw from the Rician distribution with line-of-sight
// amplitude nu and scatter sigma. A Rician channel with K = nu²/(2σ²)
// models LOS propagation with a dominant direct path; K → 0 degenerates to
// Rayleigh.
func (s *Source) Rician(nu, sigma float64) float64 {
	x := s.Normal(nu, sigma)
	y := s.Normal(0, sigma)
	return math.Hypot(x, y)
}

// Exponential returns a draw from Exp(rate).
func (s *Source) Exponential(rate float64) float64 {
	return s.r.ExpFloat64() / rate
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }
