package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(1)
	a := root.Split(1)
	b := root.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams coincide on %d/100 draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(2)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(3)
	const n = 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("Normal mean = %g, want ≈5", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Errorf("Normal variance = %g, want ≈4", variance)
	}
}

func TestRayleighMoments(t *testing.T) {
	s := New(4)
	const n = 20000
	const sigma = 2.0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Rayleigh(sigma)
		if v < 0 {
			t.Fatal("Rayleigh draw negative")
		}
		sum += v
	}
	want := sigma * math.Sqrt(math.Pi/2)
	if got := sum / n; math.Abs(got-want) > 0.07 {
		t.Errorf("Rayleigh mean = %g, want ≈%g", got, want)
	}
}

func TestRicianDegeneratesToRayleigh(t *testing.T) {
	// With nu = 0 the Rician is a Rayleigh.
	s := New(5)
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Rician(0, 1)
	}
	want := math.Sqrt(math.Pi / 2)
	if got := sum / n; math.Abs(got-want) > 0.05 {
		t.Errorf("Rician(0,1) mean = %g, want ≈%g", got, want)
	}
}

func TestRicianConcentratesWithK(t *testing.T) {
	// Large LOS amplitude: the envelope concentrates near nu.
	s := New(6)
	const n = 5000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Rician(10, 0.5)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.2 || sd > 1 {
		t.Errorf("Rician(10, 0.5): mean %g sd %g", mean, sd)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(7)
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(0.5) // mean 2
	}
	if got := sum / n; math.Abs(got-2) > 0.1 {
		t.Errorf("Exponential(0.5) mean = %g, want ≈2", got)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(8)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %g", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestIntnRange(t *testing.T) {
	s := New(10)
	for i := 0; i < 100; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}
