// Package locble is a Go implementation of LocBLE — "Locating and
// Tracking BLE Beacons with Smartphones" (Chen, Shin, Jiang, Kim;
// CoNEXT 2017) — together with the full simulation substrate needed to
// reproduce the paper's evaluation: a byte-level BLE advertising stack,
// a 2.4 GHz propagation simulator, an IMU/gait synthesizer, and the
// LocBLE pipeline itself (EnvAware environment recognition, adaptive
// noise filtering, sensor-fusion elliptical regression, L-shape
// disambiguation, and multi-beacon DTW clustering calibration).
//
// # Quick start
//
//	sys, err := locble.New()
//	trace, err := locble.Simulate(locble.Scenario{
//	    Beacons:      []locble.BeaconSpec{{Name: "keys", X: 6, Y: 3}},
//	    ObserverPlan: locble.LShapeWalk(0, 4, 4),
//	    Seed:         1,
//	})
//	pos, err := sys.Locate(trace, "keys")
//	fmt.Printf("keys at (%.1f, %.1f) ± conf %.2f\n", pos.X, pos.Y, pos.Confidence)
//
// Coordinates are relative to the observer's starting position in metres
// (paper Sec. 5: the origin is where the measurement walk begins).
package locble

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"

	"locble/internal/cluster"
	"locble/internal/core"
	"locble/internal/durable"
	"locble/internal/estimate"
	"locble/internal/fleet"
	"locble/internal/imu"
	"locble/internal/netproto"
	"locble/internal/obs"
	"locble/internal/rf"
	"locble/internal/router"
	"locble/internal/sim"
)

// Re-exported substrate types, so applications never import internal
// packages directly.
type (
	// Scenario describes a simulated measurement run (beacons, walking
	// plan, environment, phone hardware, seed).
	Scenario = sim.Scenario
	// BeaconSpec places one beacon in the world.
	BeaconSpec = sim.BeaconSpec
	// Trace is the output of a simulated measurement: scan reports plus
	// IMU samples plus ground truth.
	Trace = sim.Trace
	// WalkPlan is an observer (or moving-target) walking plan.
	WalkPlan = imu.Plan
	// WalkSegment is one leg of a walking plan.
	WalkSegment = imu.Segment
	// DeviceProfile models a phone's receiver hardware.
	DeviceProfile = rf.DeviceProfile
	// BeaconHardware models transmitter hardware (Estimote, RadBeacon,
	// a phone in beacon mode, …).
	BeaconHardware = rf.TxProfile
	// Environment is the propagation class (LOS / p-LOS / NLOS).
	Environment = rf.Environment
	// EnvModel decides the propagation class per link and moment.
	EnvModel = sim.EnvModel
	// Estimate is a raw estimator output.
	Estimate = estimate.Estimate
	// ClusterResult reports the multi-beacon calibration outcome.
	ClusterResult = cluster.Result
	// Preset is one of the paper's Table 1 environments.
	Preset = sim.Preset
)

// Propagation classes.
const (
	LOS  = rf.LOS
	PLOS = rf.PLOS
	NLOS = rf.NLOS
)

// Health reporting: every position carries a graded trust signal instead
// of the usual estimate-or-error binary. HealthOK means clean input;
// HealthDegraded means the input was impaired but recoverable (the
// Reasons list says how); inputs too damaged to use never produce a
// Position — Locate returns a *RejectedError carrying the diagnosis.
type (
	// Health grades how much a result should be trusted.
	Health = core.Health
	// HealthStatus is the overall grade (OK / degraded / rejected).
	HealthStatus = core.HealthStatus
	// HealthReason is a machine-readable degradation cause.
	HealthReason = core.HealthReason
	// RejectedError is returned when the input was unusable; it carries
	// the Health diagnosis (errors.As to recover it).
	RejectedError = core.RejectedError
)

// Health statuses.
const (
	HealthOK       = core.HealthOK
	HealthDegraded = core.HealthDegraded
	HealthRejected = core.HealthRejected
)

// Degradation-ladder and beacon-anomaly reasons, re-exported for
// callers that branch on them (the full taxonomy is documented in
// DESIGN.md § "Health taxonomy").
const (
	// ReasonRSSOnlyFallback: the fix came from the RSS-only proximity
	// rung (range known, bearing not).
	ReasonRSSOnlyFallback = core.ReasonRSSOnlyFallback
	// ReasonStaleFix: a last-known fix re-emitted within the staleness
	// bound.
	ReasonStaleFix = core.ReasonStaleFix
	// ReasonBeaconAnomaly: cloned/spoofed beacon identity detected.
	ReasonBeaconAnomaly = core.ReasonBeaconAnomaly
	// ReasonTxPowerDrift: the beacon's TX power drifted off calibration
	// and Γ was re-anchored.
	ReasonTxPowerDrift = core.ReasonTxPowerDrift
	// ReasonBeaconEvicted: tracking state aged past the staleness bound
	// and was dropped.
	ReasonBeaconEvicted = core.ReasonBeaconEvicted
)

// HealthFromError recovers the Health diagnosis from a Locate/Track
// error (a rejected Health if the error is a *RejectedError).
func HealthFromError(err error) Health { return core.HealthFromError(err) }

// FixMode identifies which rung of the degradation ladder produced a
// position: full RSS+IMU fusion, RSS-only path-loss proximity (IMU
// dropout), or a re-emitted last-known fix within the staleness bound.
type FixMode = core.FixMode

// Degradation-ladder rungs.
const (
	ModeFull      = core.ModeFull
	ModeRSSOnly   = core.ModeRSSOnly
	ModeLastKnown = core.ModeLastKnown
)

// Loss selects the regression loss: classic least squares, or an IRLS
// M-estimator (Huber / Tukey bisquare) that down-weights RSS outliers —
// interference impulses, passing bodies — instead of letting them drag
// the fit (see DESIGN.md, "Robust estimation").
type Loss = estimate.Loss

// Regression losses.
const (
	LossSquared = estimate.LossSquared
	LossHuber   = estimate.LossHuber
	LossTukey   = estimate.LossTukey
)

// ParseLoss parses a loss name ("squared", "huber", "tukey") as the
// CLI's -loss flag does.
func ParseLoss(s string) (Loss, error) { return estimate.ParseLoss(s) }

// Stock hardware profiles.
var (
	IPhone5s       = rf.IPhone5s
	IPhone6s       = rf.IPhone6s
	Nexus5x        = rf.Nexus5x
	Nexus6P        = rf.Nexus6P
	MotoNexus6     = rf.MotoNex6
	EstimoteBeacon = rf.EstimoteBeacon
	RadBeaconUSB   = rf.RadBeaconUSB
	IOSDeviceTx    = rf.IOSDeviceTx
)

// LShapeWalk returns the canonical measurement movement (paper Sec. 5.1):
// walk legA metres along heading (radians), turn 90° left, walk legB
// metres.
func LShapeWalk(heading, legA, legB float64) WalkPlan {
	return WalkPlan{Segments: imu.LShape(heading, legA, legB)}
}

// StraightWalk returns a single-leg walk (leaves the mirror ambiguity
// unresolved; see Position.Ambiguous).
func StraightWalk(heading, distance float64) WalkPlan {
	return WalkPlan{Segments: []WalkSegment{{Heading: heading, Distance: distance}}}
}

// StaticEnv is a constant propagation class for Scenario.EnvModel.
func StaticEnv(e Environment) EnvModel { return sim.StaticEnv(e) }

// Wall is a blocking segment for WallsEnv: links crossing it take the
// wall's propagation class (NLOS for concrete, PLOS for glass/wood).
type Wall = sim.Wall

// WallsEnv is an environment with blocking segments; links are LOS unless
// a wall crosses them (the most blocking wall wins).
func WallsEnv(walls ...Wall) EnvModel { return &sim.WallEnv{Walls: walls} }

// Presets returns the paper's nine Table 1 environments.
func Presets() []Preset { return sim.Presets() }

// Simulate runs a scenario through the BLE + RF + IMU substrate and
// returns the trace a phone app would have recorded.
func Simulate(sc Scenario) (*Trace, error) { return sim.Run(sc) }

// Position is a located beacon.
type Position struct {
	// X, Y in metres, relative to the observer's start; x points along
	// the observer's initial magnetometer heading frame.
	X, Y float64
	// Range is the distance from the observer's starting point.
	Range float64
	// Confidence is the estimation confidence in [0, 1] (paper Sec. 5).
	Confidence float64
	// Environment is EnvAware's final classification of the link.
	Environment Environment
	// PathLossExponent is the estimated n(e).
	PathLossExponent float64
	// Ambiguous marks a straight-walk measurement whose mirror solution
	// could not be ruled out; Mirror then holds the other candidate.
	Ambiguous bool
	Mirror    *Position
	// Health grades how trustworthy this position is given the input
	// quality (see the Health type).
	Health Health
	// Mode identifies the degradation-ladder rung that produced this
	// position (ModeFull for a healthy fusion fix; see FixMode).
	Mode FixMode
}

// Option configures a System.
type Option func(*core.Config)

// WithoutANF disables adaptive noise filtering (ablation).
func WithoutANF() Option { return func(c *core.Config) { c.DisableANF = true } }

// WithoutEnvAware disables environment-change detection (ablation).
func WithoutEnvAware() Option { return func(c *core.Config) { c.DisableEnvAware = true } }

// WithStreamingANF selects the paper's online BF+AKF filter instead of
// the default zero-phase batch filter.
func WithStreamingANF() Option { return func(c *core.Config) { c.StreamingANF = true } }

// WithButterworthOrder overrides the ANF low-pass order (paper: 6).
func WithButterworthOrder(order int) Option {
	return func(c *core.Config) { c.ButterworthOrder = order }
}

// WithLoss selects the regression loss (LossHuber or LossTukey for
// outlier-resistant IRLS estimation; the default is LossSquared).
func WithLoss(l Loss) Option { return func(c *core.Config) { c.Estimator.Loss = l } }

// WithoutDegradationLadder disables both fallback rungs (RSS-only and
// last-known), restoring the strict reject-on-impairment contract.
func WithoutDegradationLadder() Option {
	return func(c *core.Config) {
		c.Ladder.DisableRSSOnly = true
		c.Ladder.DisableLastKnown = true
	}
}

// System is a ready-to-use LocBLE pipeline. Safe for concurrent use.
type System struct {
	engine *core.Engine
}

// New builds a System, training the EnvAware classifier on first use
// (the trained model is cached per process).
func New(opts ...Option) (*System, error) {
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, fmt.Errorf("locble: %w", err)
	}
	return &System{engine: eng}, nil
}

// Close releases the System's background resources — the persistent
// LocateAll worker pool, if one was started. A closed System remains
// fully usable (LocateAll simply runs inline); Close matters for hosts
// that create Systems dynamically and must not leak goroutines.
func (s *System) Close() error { return s.engine.Close() }

// Locate runs the full pipeline for one beacon of a trace.
func (s *System) Locate(tr *Trace, beacon string) (*Position, error) {
	return s.LocateCtx(context.Background(), tr, beacon)
}

// LocateCtx is Locate under a context: a deadline or cancellation (a
// disconnected client, a draining server) stops the pipeline between
// stages and interrupts the regression mid-search. The returned error
// matches the context error under errors.Is.
func (s *System) LocateCtx(ctx context.Context, tr *Trace, beacon string) (*Position, error) {
	m, err := s.engine.LocateContext(ctx, tr, beacon)
	if err != nil {
		return nil, err
	}
	return positionFrom(m), nil
}

// LocateAll locates every beacon visible in the trace concurrently,
// returning positions keyed by beacon name (beacons whose estimation
// failed are omitted).
func (s *System) LocateAll(tr *Trace) map[string]*Position {
	return s.LocateAllCtx(context.Background(), tr)
}

// LocateAllCtx is LocateAll under a context. The fan-out runs on a
// persistent worker pool sized to the CPU count (one shard per worker,
// beacons hashed to shards); cancellation drains it fast (beacons not
// yet started are skipped, in-flight ones stop mid-regression and are
// omitted like any failed beacon).
func (s *System) LocateAllCtx(ctx context.Context, tr *Trace) map[string]*Position {
	out := make(map[string]*Position)
	for _, res := range s.engine.LocateAllContext(ctx, tr) {
		if res.Err == nil {
			out[res.Name] = positionFrom(res.M)
		}
	}
	return out
}

// LocateCalibrated locates the beacon and refines the estimate with the
// multi-beacon clustering calibration (paper Sec. 6) using every other
// beacon visible in the trace.
func (s *System) LocateCalibrated(tr *Trace, beacon string) (*Position, *ClusterResult, error) {
	m, cres, err := s.engine.LocateWithCluster(tr, beacon)
	if err != nil {
		return nil, nil, err
	}
	return positionFrom(m), cres, nil
}

// Navigator starts a navigation session toward a located position
// (paper Sec. 7.3: measure, then dead-reckon toward the target). The
// position's Health is carried into the session, so advice derived from
// a degraded measurement is flagged (Advice.Degraded).
func (s *System) Navigator(p *Position) *core.Navigator {
	n := core.NewNavigator(&estimate.Estimate{X: p.X, H: p.Y})
	n.SourceHealth = p.Health
	return n
}

// Fix is one sliding-window tracking fix.
type Fix struct {
	// T is the fix time in seconds into the trace.
	T float64
	// Position at that fix.
	Position Position
}

// Track produces a stream of location fixes over the trace — a fix every
// step seconds, each fitted on the last window seconds (the "tracking"
// of the paper's title). Zero values select window = 6 s, step = 2 s.
func (s *System) Track(tr *Trace, beacon string, window, step float64) ([]Fix, error) {
	return s.TrackCtx(context.Background(), tr, beacon, window, step)
}

// TrackCtx is Track under a context: a deadline or cancellation stops
// the run between windows (no partial fixes are returned).
func (s *System) TrackCtx(ctx context.Context, tr *Trace, beacon string, window, step float64) ([]Fix, error) {
	pts, err := s.engine.TrackBeaconContext(ctx, tr, beacon, window, step)
	if err != nil {
		return nil, err
	}
	fixes := make([]Fix, len(pts))
	for i, p := range pts {
		fixes[i] = Fix{T: p.T, Position: Position{
			X:                p.Est.X,
			Y:                p.Est.H,
			Range:            p.Est.Range(),
			Confidence:       p.Est.Confidence,
			PathLossExponent: p.Est.N,
			Ambiguous:        p.Est.Ambiguous,
			Health:           p.Health,
			Mode:             p.Mode,
		}}
	}
	return fixes, nil
}

// TrackSmoothed is Track followed by a 2-D constant-velocity Kalman
// smoother over the fixes — the stable track a live UI would draw.
// processAccel is the assumed target acceleration in m/s² (0 for a
// stationary beacon, ~0.3 for a walking person).
func (s *System) TrackSmoothed(tr *Trace, beacon string, window, step, processAccel float64) ([]Fix, error) {
	pts, err := s.engine.TrackBeacon(tr, beacon, window, step)
	if err != nil {
		return nil, err
	}
	smoothed := core.SmoothFixes(pts, processAccel, 1.5)
	health := pts[0].Health
	fixes := make([]Fix, len(smoothed))
	for i, p := range smoothed {
		fixes[i] = Fix{T: p.T, Position: Position{
			X:     p.X,
			Y:     p.Y,
			Range: math.Hypot(p.X, p.Y),
			// Map the filter's 1-σ uncertainty onto a [0,1] confidence.
			Confidence: 1 / (1 + p.PosStdDev),
			Health:     health,
		}}
	}
	return fixes, nil
}

// LocateNear locates a beacon and applies the last-metre proximity
// refinement (paper Sec. 9.2): when the walk passed within ~2 m of the
// beacon, the proximity-implied range corrects the fix.
func (s *System) LocateNear(tr *Trace, beacon string) (*Position, error) {
	m, err := s.engine.Locate(tr, beacon)
	if err != nil {
		return nil, err
	}
	refined := s.engine.RefineWithProximity(m, core.DefaultProximityFusionConfig())
	m2 := *m
	m2.Est = refined
	return positionFrom(&m2), nil
}

// Position3D is a located beacon with height (paper Sec. 9.3).
type Position3D struct {
	X, Y, Z    float64
	Range      float64
	Confidence float64
}

// Locate3D runs the 3-D extension: the observer plan must include a
// vertical phone gesture (WalkSegment.Lift) so the movement spans three
// dimensions; the estimate then includes the beacon's height relative to
// the phone's carry plane.
func (s *System) Locate3D(tr *Trace, beacon string) (*Position3D, error) {
	est, err := s.engine.Locate3D(tr, beacon)
	if err != nil {
		return nil, err
	}
	return &Position3D{
		X: est.X, Y: est.H, Z: est.Z,
		Range:      est.Range(),
		Confidence: est.Confidence,
	}, nil
}

// Streaming sessions: the facade's window on the long-running serving
// path. A TrackSession consumes fused observations one at a time,
// emits a fix per completed window, and can be checkpointed to a
// versioned JSON snapshot and restored in a fresh process,
// resuming sample-for-sample (see DESIGN.md, "Checkpoint / restore").
type (
	// TrackSession is a streaming per-beacon tracking session.
	TrackSession = core.TrackSession
	// TrackSessionConfig configures a TrackSession.
	TrackSessionConfig = core.TrackSessionConfig
	// SessionCheckpoint is a session's versioned serialized state.
	SessionCheckpoint = core.SessionCheckpoint
	// Obs is one fused observation (time, RSS, relative displacement)
	// — the input unit of a TrackSession.
	Obs = estimate.Obs
)

// NewTrackSession starts a streaming tracking session on this System's
// pipeline configuration.
func (s *System) NewTrackSession(cfg TrackSessionConfig) (*TrackSession, error) {
	return s.engine.NewTrackSession(cfg)
}

// RestoreTrackSession reads a JSON checkpoint written by
// TrackSession.WriteCheckpoint and resumes the session. The System must
// be configured identically to the one that wrote the checkpoint.
func (s *System) RestoreTrackSession(r io.Reader) (*TrackSession, error) {
	return s.engine.RestoreTrackSessionFrom(r)
}

// Fleet serving: the multi-session front end over streaming sessions.
// A Fleet owns thousands of per-beacon TrackSessions behind a sharded
// registry, ingests mixed observation batches, evicts idle sessions to
// a checkpoint store and restores them bit-exactly when their beacon
// reappears (see DESIGN.md, "Fleet serving").
type (
	// Fleet is a concurrent multi-session tracking service.
	Fleet = fleet.Fleet
	// FleetConfig configures a Fleet (shard count, session template,
	// checkpoint store, idle horizon, per-shard session cap).
	FleetConfig = fleet.Config
	// FleetObs is one beacon-tagged fused observation, the unit of
	// fleet ingest.
	FleetObs = fleet.Obs
	// FleetResult is one beacon's outcome of a PushBatch call.
	FleetResult = fleet.Result
	// CheckpointStore persists evicted sessions' checkpoints; the
	// in-process implementation is NewMemStore.
	CheckpointStore = fleet.CheckpointStore
)

// NewMemStore returns the in-process CheckpointStore.
func NewMemStore() *fleet.MemStore { return fleet.NewMemStore() }

// Durable checkpoint storage: a crash-safe file-backed CheckpointStore.
// Each shard keeps a CRC-framed write-ahead log compacted into periodic
// atomic snapshots; recovery replays snapshot+WAL, truncates torn tails
// and quarantines bit-rotted records instead of silently accepting them
// (see DESIGN.md, "Durability").
type (
	// FileStore is the file-backed durable CheckpointStore.
	FileStore = durable.FileStore
	// FileStoreOptions tunes a FileStore (shard count, snapshot
	// cadence, buffered vs synchronous acknowledgement).
	FileStoreOptions = durable.Options
	// StoreRecoveryStats reports what recovery found and repaired when
	// a FileStore was opened.
	StoreRecoveryStats = durable.RecoveryStats
)

// NewFileStore opens (creating if needed) a durable CheckpointStore
// rooted at dir with default options: 4 shards, snapshot every 512
// records, every Save acknowledged only after fsync. Inspect
// (*FileStore).RecoveryStats for what recovery replayed and repaired.
func NewFileStore(dir string) (*FileStore, error) { return durable.Open(dir, nil) }

// OpenFileStore is NewFileStore with explicit options.
func OpenFileStore(dir string, opt *FileStoreOptions) (*FileStore, error) {
	return durable.Open(dir, opt)
}

// NewFleet starts a fleet-scale session manager on this System's
// pipeline configuration. Close the Fleet before closing the System.
func (s *System) NewFleet(cfg FleetConfig) (*Fleet, error) {
	return fleet.New(s.engine, cfg)
}

// Multi-node routing: scale fleet serving across machines. A Router
// fans mixed observation batches over N netproto fleet servers through
// a seeded consistent-hash ring, merges per-beacon results in input
// order bit-identically to a single fleet's sequential replay, drains
// nodes for planned membership changes (their sessions hand off through
// the shared checkpoint store), and fails a dead node's key range over
// to the survivors with typed degraded results (see DESIGN.md,
// "Multi-node routing").
type (
	// Router is the consistent-hash fan-out over fleet servers.
	Router = router.Router
	// RouterConfig configures a Router (virtual nodes, ring seed,
	// per-node circuit breaker, wire codec, pipelining window).
	RouterConfig = router.Config
	// RouterResult is one beacon's merged outcome of a routed
	// PushBatch.
	RouterResult = router.Result
	// RouterNodeStatus is one node's membership view (up / probing /
	// down / drained).
	RouterNodeStatus = router.NodeStatus
)

// Wire codec names for RouterConfig.Codec and the -codec CLI flag. The
// zero value ("") negotiates CodecBinary with transparent fallback to
// CodecJSON against peers that don't speak it.
const (
	// CodecJSON is the length-prefixed JSON wire codec every release
	// speaks — the interoperability baseline.
	CodecJSON = netproto.CodecJSON
	// CodecBinary is the negotiated little-endian binary codec
	// ("locb1"): the same exchanges in a fraction of the bytes and
	// allocations, bit-identical results.
	CodecBinary = netproto.CodecBinary
)

// NewRouter builds a router over the netproto fleet servers at addrs.
// Connections are dialed lazily, so nodes may come up after the router.
func NewRouter(addrs []string, cfg RouterConfig) (*Router, error) {
	return router.New(addrs, cfg)
}

// SaveTrace writes a trace as gzip-compressed JSON for offline analysis.
func SaveTrace(w io.Writer, tr *Trace) error { return sim.SaveTrace(w, tr) }

// LoadTrace reads a trace written by SaveTrace.
func LoadTrace(r io.Reader) (*Trace, error) { return sim.LoadTrace(r) }

// Engine exposes the underlying pipeline for advanced use (benchmarks,
// custom experiments).
func (s *System) Engine() *core.Engine { return s.engine }

// Metrics is a point-in-time copy of a metric registry: monotone
// counters, gauges with high-water marks, and fixed-bucket latency /
// value histograms. It marshals to JSON (expvar-style).
type Metrics = obs.Snapshot

// Metrics returns this System's pipeline metrics — per-stage latency
// histograms (sanitize / motion / filter / classify / regress), health
// and drop-reason counts, AKF adaptation stats, and LocateAll
// concurrency — scoped to this System only.
func (s *System) Metrics() Metrics { return s.engine.Metrics() }

// ProcessMetrics returns the process-wide metric snapshot shared by all
// Systems: sigproc, estimate, and netproto library instrumentation
// (Nelder–Mead iterations, L-shape outcomes, wire frame counts, …).
func ProcessMetrics() Metrics { return obs.Default.Snapshot() }

// MetricsHandler returns an http.Handler serving the process-wide
// metric snapshot as JSON — mount it next to net/http/pprof for a
// self-describing diagnostics endpoint.
func MetricsHandler() http.Handler { return obs.Default.Handler() }

func positionFrom(m *core.Measurement) *Position {
	p := &Position{
		X:                m.Est.X,
		Y:                m.Est.H,
		Range:            m.Est.Range(),
		Confidence:       m.Est.Confidence,
		Environment:      m.FinalEnv,
		PathLossExponent: m.Est.N,
		Ambiguous:        m.Est.Ambiguous,
		Health:           m.Health,
		Mode:             m.Mode,
	}
	if m.Est.Ambiguous && len(m.Est.Candidates) == 2 {
		alt := m.Est.Candidates[1]
		if math.Abs(alt.X-p.X) < 1e-9 && math.Abs(alt.H-p.Y) < 1e-9 {
			alt = m.Est.Candidates[0]
		}
		p.Mirror = &Position{X: alt.X, Y: alt.H, Range: math.Hypot(alt.X, alt.H), Confidence: p.Confidence}
	}
	return p
}
