module locble

go 1.22
