package main

import (
	"os"
	"path/filepath"
	"testing"

	"locble"
)

func TestRunEndToEnd(t *testing.T) {
	if err := run(6, 3, "los", "iphone6s", "estimote", 1, "squared", "", false, false, false, false, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithNavigation(t *testing.T) {
	if err := run(5, 2, "plos", "nexus6p", "radbeacon", 2, "squared", "", true, false, false, false, true); err != nil {
		t.Fatalf("run -navigate: %v", err)
	}
}

func TestRunTrackMode(t *testing.T) {
	if err := run(6, 3, "los", "iphone6s", "estimote", 3, "squared", "", false, true, false, false, false); err != nil {
		t.Fatalf("run -track: %v", err)
	}
}

func TestRunClusterMode(t *testing.T) {
	if err := run(6, 3, "los", "iphone6s", "estimote", 4, "squared", "", false, false, true, false, true); err != nil {
		t.Fatalf("run -cluster: %v", err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run(6, 3, "vacuum", "iphone6s", "estimote", 1, "squared", "", false, false, false, false, false); err == nil {
		t.Error("want error for unknown environment")
	}
	if err := run(6, 3, "los", "rotaryphone", "estimote", 1, "squared", "", false, false, false, false, false); err == nil {
		t.Error("want error for unknown phone")
	}
	if err := run(6, 3, "los", "iphone6s", "smoke-signal", 1, "squared", "", false, false, false, false, false); err == nil {
		t.Error("want error for unknown beacon")
	}
	if err := run(6, 3, "los", "iphone6s", "estimote", 1, "hinge", "", false, false, false, false, false); err == nil {
		t.Error("want error for unknown loss")
	}
	if err := run(6, 3, "los", "iphone6s", "estimote", 1, "squared", "gremlins", false, false, false, false, false); err == nil {
		t.Error("want error for unknown fault injector")
	}
}

func TestRunWithFaults(t *testing.T) {
	// Degraded but recoverable input must still produce an estimate.
	if err := run(6, 3, "los", "iphone6s", "estimote", 1, "squared", "nan,dropout", false, false, false, false, false); err != nil {
		t.Fatalf("run -faults nan,dropout: %v", err)
	}
	// An unusable input is reported as rejected, not a CLI failure.
	if err := run(6, 3, "los", "iphone6s", "estimote", 1, "squared", "truncate", false, false, false, false, false); err != nil {
		t.Fatalf("run -faults truncate: %v", err)
	}
}

func TestRunRobustLossUnderHostileFaults(t *testing.T) {
	// The headline robustness demo: impulsive interference plus a
	// coordinated outlier run, survived by Huber IRLS.
	if err := run(6, 3, "los", "iphone6s", "estimote", 1, "huber", "impulse,outliers", false, false, false, false, true); err != nil {
		t.Fatalf("run -loss huber -faults impulse,outliers: %v", err)
	}
	// A cloned beacon identity must be reported, not crash the CLI.
	if err := run(6, 3, "los", "iphone6s", "estimote", 2, "tukey", "clone", false, false, false, false, false); err != nil {
		t.Fatalf("run -loss tukey -faults clone: %v", err)
	}
	if err := run(6, 3, "los", "iphone6s", "estimote", 3, "huber", "decay", false, false, false, false, false); err != nil {
		t.Fatalf("run -loss huber -faults decay: %v", err)
	}
}

func TestReplayRoundTrip(t *testing.T) {
	tr, err := locble.Simulate(locble.Scenario{
		Beacons:      []locble.BeaconSpec{{Name: "target", X: 6, Y: 3}},
		ObserverPlan: locble.LShapeWalk(0, 4, 4),
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := locble.SaveTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := runReplay(path, true, true); err != nil {
		t.Fatalf("runReplay: %v", err)
	}
	if err := runReplay(filepath.Join(t.TempDir(), "missing.trace"), false, false); err == nil {
		t.Error("want error for missing file")
	}
}

// TestRunFleetDurableStore runs the fleet demo twice over the same
// -store directory: the second run must recover the first run's
// checkpoints from disk.
func TestRunFleetDurableStore(t *testing.T) {
	dir := t.TempDir()
	if err := runFleet(2, dir, false, false); err != nil {
		t.Fatalf("runFleet (first run): %v", err)
	}
	st, err := locble.NewFileStore(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	if st.Len() == 0 {
		t.Fatal("first run left no checkpoints on disk")
	}
	if rec := st.RecoveryStats(); rec.TornTails != 0 || rec.Quarantined != 0 {
		t.Fatalf("clean run left damage: %+v", rec)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}
	if err := runFleet(2, dir, false, false); err != nil {
		t.Fatalf("runFleet (recovered run): %v", err)
	}
}

// TestRunRouterLoopback runs the multi-node demo end to end: a 3-node
// loopback cluster over a shared durable store, with the mid-run drain
// and handoff.
func TestRunRouterLoopback(t *testing.T) {
	if err := runRouter("3", 6, t.TempDir(), "", "", true, false); err != nil {
		t.Fatalf("runRouter: %v", err)
	}
}

// TestRunRouterBadSpec: degenerate cluster specs are reported, not run.
func TestRunRouterBadSpec(t *testing.T) {
	if err := runRouter("1", 4, "", "", "", false, false); err == nil {
		t.Error("want error for a 1-node cluster")
	}
	if err := runRouter("a:1,a:1", 4, "", "", "", false, false); err == nil {
		t.Error("want error for duplicate addresses")
	}
}
