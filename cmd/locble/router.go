package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"locble"
	"locble/internal/fleet"
	"locble/internal/netproto"
)

// parseCodec maps the -codec flag to a netproto codec name: "" keeps
// the default (negotiate binary, fall back to JSON).
func parseCodec(codec string) (string, error) {
	switch codec {
	case "":
		return "", nil
	case "json":
		return netproto.CodecJSON, nil
	case "binary", netproto.CodecBinary:
		return netproto.CodecBinary, nil
	default:
		return "", fmt.Errorf("-codec %q: want json or binary", codec)
	}
}

// runServe runs one standalone netproto fleet server — a node for
// -router to fan out over — until interrupted. With storeDir set, its
// sessions checkpoint into a durable store; point every node of a
// cluster at a shared directory and router drains hand sessions off
// bit-exactly. -codec json pins the node to plain JSON (it refuses
// binary hellos like a pre-codec release, so clients fall back).
func runServe(port int, storeDir, codec string) error {
	codec, err := parseCodec(codec)
	if err != nil {
		return err
	}
	sys, err := locble.New()
	if err != nil {
		return err
	}
	defer sys.Close()
	var store locble.CheckpointStore = locble.NewMemStore()
	if storeDir != "" {
		fs, err := locble.NewFileStore(storeDir)
		if err != nil {
			return err
		}
		defer fs.Close()
		rec := fs.RecoveryStats()
		fmt.Printf("durable store %s: %d checkpoints recovered (%d replayed, %d torn tails, %d quarantined)\n",
			storeDir, fs.Len(), rec.Replayed, rec.TornTails, rec.Quarantined)
		store = fs
	}
	fl, err := sys.NewFleet(locble.FleetConfig{
		Session: locble.TrackSessionConfig{SampleRateHz: 8},
		Store:   store,
	})
	if err != nil {
		return err
	}
	srv, err := netproto.NewServerWithConfig("fleet-node", port,
		netproto.ServerConfig{DisableBinary: codec == netproto.CodecJSON})
	if err != nil {
		fl.Close()
		return err
	}
	srv.SetFleet(fl)
	defer fl.Close() // checkpoints live sessions into the store
	defer srv.Close()

	wire := "json+locb1"
	if codec == netproto.CodecJSON {
		wire = "json only"
	}
	fmt.Printf("fleet server on %s (ops: fetch, push, drain, metrics; codecs: %s) — ctrl-C to stop\n", srv.Addr(), wire)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Println("\nshutting down: checkpointing live sessions")
	return nil
}

// runRouter demos multi-node scale-out. The spec is either a node count
// ("3": that many in-process loopback fleet servers sharing one
// checkpoint store) or a comma-separated address list of running -serve
// nodes. Batched multi-beacon ingest fans out over the consistent-hash
// ring; halfway through, one node is drained — in loopback mode the
// node serving tag-00, in address mode the -drain address if given —
// and its beacons hand off to the survivors, restoring bit-exactly from
// the shared store. -codec pins the wire codec used toward the nodes
// (default: negotiate binary per node, fall back to JSON).
func runRouter(spec string, beacons int, storeDir, drainAddr, codec string, metricsF, verbose bool) error {
	codec, err := parseCodec(codec)
	if err != nil {
		return err
	}
	if beacons < 2 {
		beacons = 2
	}
	var (
		addrs   []string
		cleanup []func()
	)
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()
	if n, err := strconv.Atoi(spec); err == nil {
		// Loopback mode: an in-process cluster over one shared store.
		if n < 2 {
			return fmt.Errorf("-router %d: a cluster needs at least 2 nodes", n)
		}
		var store locble.CheckpointStore = locble.NewMemStore()
		if storeDir != "" {
			fs, err := locble.NewFileStore(storeDir)
			if err != nil {
				return err
			}
			cleanup = append(cleanup, func() { fs.Close() })
			store = fs
		}
		for i := 0; i < n; i++ {
			sys, err := locble.New()
			if err != nil {
				return err
			}
			cleanup = append(cleanup, func() { sys.Close() })
			fl, err := sys.NewFleet(locble.FleetConfig{
				Session: locble.TrackSessionConfig{SampleRateHz: 8},
				Store:   store,
			})
			if err != nil {
				return err
			}
			srv, err := netproto.NewServer(fmt.Sprintf("node-%d", i), 0)
			if err != nil {
				fl.Close()
				return err
			}
			srv.SetFleet(fl)
			cleanup = append(cleanup, func() { srv.Close(); fl.Close() })
			addrs = append(addrs, srv.Addr())
		}
		fmt.Printf("router demo: %d-node loopback cluster, shared %s store\n",
			n, map[bool]string{true: "durable", false: "memory"}[storeDir != ""])
	} else {
		addrs = strings.Split(spec, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		fmt.Printf("router: %d external nodes: %s\n", len(addrs), strings.Join(addrs, ", "))
	}

	rt, err := locble.NewRouter(addrs, locble.RouterConfig{Codec: codec})
	if err != nil {
		return err
	}
	defer rt.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const (
		n       = 480 // 60 s per beacon at 8 Hz
		slice   = 16  // 2 s batches
		drainAt = 240 // drain one node at t = 30 s
	)
	streams := make([][]locble.FleetObs, beacons)
	for i := range streams {
		name := fmt.Sprintf("tag-%02d", i)
		for _, o := range fleet.SynthStream(name, n, 0.5*float64(i)) {
			streams[i] = append(streams[i], locble.FleetObs{
				Beacon: o.Beacon, T: o.T, RSS: o.RSS, P: o.P, Q: o.Q,
			})
		}
	}
	fmt.Printf("%d beacons, %.0f s of observations, %.0f s batches; drain at t=%.0f s\n",
		beacons, float64(n)/8, float64(slice)/8, float64(drainAt)/8)

	home := map[string]string{}
	victim := drainAddr
	fixes, degraded := 0, 0
	for lo := 0; lo < n; lo += slice {
		if lo == drainAt && victim != "" {
			start := time.Now()
			moved, err := rt.Drain(ctx, victim)
			if err != nil {
				return err
			}
			fmt.Printf("  t=%4.1f  drained %s: %d sessions checkpointed and handed off in %.0f ms\n",
				float64(lo)/8, victim, moved, time.Since(start).Seconds()*1e3)
		}
		var batch []locble.FleetObs
		for _, s := range streams {
			batch = append(batch, s[lo:lo+slice]...)
		}
		results, err := rt.PushBatch(ctx, batch)
		if err != nil {
			return err
		}
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "  %s: %v\n", r.Beacon, r.Err)
				continue
			}
			if victim == "" && r.Beacon == "tag-00" {
				victim = r.Node // loopback mode: drain tag-00's node
			}
			if prev, ok := home[r.Beacon]; !ok {
				home[r.Beacon] = r.Node
				if verbose {
					fmt.Printf("  t=%4.1f  %s -> node %s\n", float64(lo)/8, r.Beacon, r.Node)
				}
			} else if prev != r.Node {
				home[r.Beacon] = r.Node
				tag := "restored from checkpoint"
				if !r.Restored {
					tag = "cold start"
				}
				fmt.Printf("  t=%4.1f  %s handed off %s -> %s (%s)\n",
					float64(lo)/8, r.Beacon, prev, r.Node, tag)
			}
			if r.Degraded {
				degraded++
			}
			fixes += len(r.Fixes)
		}
	}

	perNode := map[string]int{}
	for _, nd := range home {
		perNode[nd]++
	}
	fmt.Printf("summary: %d fixes, %d degraded results; beacons per node:", fixes, degraded)
	for _, st := range rt.Nodes() {
		fmt.Printf(" %s=%d(%s)", st.Addr, perNode[st.Addr], st.State)
	}
	fmt.Println()
	snap := rt.Metrics()
	fmt.Printf("router: %d batches, %d obs routed, ring churn %d, %d sessions drained\n",
		snap.Counters["router.batches"],
		snap.Counters["router.obs.routed"],
		snap.Counters["router.ring.churn"],
		snap.Counters["router.drained.sessions"])
	if metricsF {
		fmt.Println("\nrouter metrics:")
		snap.WriteJSON(os.Stdout)
	}
	return nil
}
