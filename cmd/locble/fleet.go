package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"locble"
	"locble/internal/fleet"
	"locble/internal/netproto"
)

// runFleet demos the fleet serving stack end to end on loopback: a
// netproto server with an attached Fleet ingests batched observations
// for many beacons over the {"op":"push"} wire op, one beacon walks out
// of range (idle-evicted to a checkpoint) and back (restored, resuming
// its session bit-exactly), and the run closes with the fleet's
// lifecycle metrics.
//
// With storeDir set, checkpoints live in a crash-safe durable store on
// disk instead of memory: kill the process mid-run, rerun with the same
// -store, and the evicted sessions recover — the open prints what
// recovery replayed and repaired.
func runFleet(beacons int, storeDir string, metricsF, verbose bool) error {
	if beacons < 2 {
		beacons = 2
	}
	sys, err := locble.New()
	if err != nil {
		return err
	}
	defer sys.Close()
	var store locble.CheckpointStore = locble.NewMemStore()
	if storeDir != "" {
		fs, err := locble.NewFileStore(storeDir)
		if err != nil {
			return err
		}
		defer fs.Close()
		rec := fs.RecoveryStats()
		fmt.Printf("durable store %s: %d checkpoints recovered (%d records replayed, %d torn tails truncated, %d corrupt records quarantined)\n",
			storeDir, fs.Len(), rec.Replayed, rec.TornTails, rec.Quarantined)
		store = fs
	}
	fl, err := sys.NewFleet(locble.FleetConfig{
		Session:    locble.TrackSessionConfig{SampleRateHz: 8},
		Store:      store,
		IdleMaxAge: 5,
	})
	if err != nil {
		return err
	}
	srv, err := netproto.NewServer("fleet-demo", 0)
	if err != nil {
		fl.Close()
		return err
	}
	srv.SetFleet(fl)
	defer fl.Close()
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cl, err := netproto.DialFleet(ctx, srv.Addr())
	if err != nil {
		return err
	}
	defer cl.Close()

	const (
		n     = 480 // 60 s per beacon at 8 Hz
		slice = 16  // 2 s batches
		gapLo = 160 // the wanderer is silent for t in [20, 40) s —
		gapHi = 320 // long past the 5 s idle horizon
	)
	wanderer := "tag-00"
	streams := make([][]netproto.PushObs, beacons)
	for i := range streams {
		name := fmt.Sprintf("tag-%02d", i)
		for _, o := range fleet.SynthStream(name, n, 0.5*float64(i)) {
			streams[i] = append(streams[i], netproto.PushObs{
				Beacon: o.Beacon, T: o.T, RSS: o.RSS, P: o.P, Q: o.Q,
			})
		}
	}

	fmt.Printf("fleet demo: %d beacons, %.0f s of observations, %.0f s batches over loopback push (server %s)\n",
		beacons, float64(n)/8, float64(slice)/8, srv.Addr())

	live := int64(0)
	fixes := 0
	for lo := 0; lo < n; lo += slice {
		var batch []netproto.PushObs
		for i, s := range streams {
			if i == 0 && lo >= gapLo && lo < gapHi {
				continue // the wanderer is out of range
			}
			batch = append(batch, s[lo:lo+slice]...)
		}
		res, err := cl.Push(ctx, batch)
		if err != nil {
			return err
		}
		if lo == gapLo {
			fmt.Printf("  t=%4.1f  %s went silent\n", float64(lo)/8, wanderer)
		}
		for _, r := range res {
			if r.Err != "" {
				fmt.Fprintf(os.Stderr, "  %s: %s\n", r.Beacon, r.Err)
				continue
			}
			if r.Restored {
				fmt.Printf("  t=%4.1f  %s reappeared: session restored from checkpoint\n", float64(lo)/8, r.Beacon)
			}
			fixes += len(r.Fixes)
			for _, fx := range r.Fixes {
				if r.Beacon == wanderer || verbose {
					fmt.Printf("  t=%4.1f  %s  fix (%.2f, %.2f)  conf %.2f  %s\n",
						fx.T, r.Beacon, fx.X, fx.Y, fx.Confidence, fx.Mode)
				}
			}
		}
		if now := fl.Sessions(); now != live {
			if now < live {
				fmt.Printf("  t=%4.1f  sessions %d -> %d (idle sessions evicted to checkpoints)\n",
					float64(lo+slice)/8, live, now)
			}
			live = now
		}
	}

	snap := fl.Metrics()
	fmt.Printf("summary: sessions created=%d evicted=%d restored=%d live=%d; checkpoints=%d; %d batches, %d obs, %d fixes\n",
		snap.Counters["fleet.sessions.created"],
		snap.Counters["fleet.sessions.evicted"],
		snap.Counters["fleet.sessions.restored"],
		fl.Sessions(),
		snap.Counters["fleet.checkpoints.written"],
		snap.Counters["fleet.batches"],
		snap.Counters["fleet.obs.pushed"],
		fixes)
	if metricsF {
		fmt.Println("\nfleet metrics:")
		snap.WriteJSON(os.Stdout)
	}
	return nil
}
