// Command locble simulates a LocBLE measurement end to end: it places a
// beacon, walks a virtual observer through an L-shaped measurement,
// locates the beacon with the full pipeline, and (optionally) navigates
// to it — printing what the phone app's UI would show.
//
// Usage:
//
//	locble [flags]
//
//	-x, -y        true beacon position in metres (default 6, 3)
//	-env          propagation class: los | plos | nlos (default los)
//	-phone        iphone5s | iphone6s | nexus5x | nexus6p (default iphone6s)
//	-beacon       estimote | radbeacon | ios (default estimote)
//	-seed         simulation seed
//	-loss         regression loss: squared | huber | tukey (default squared)
//	-navigate     after measuring, walk to the estimate
//	-cluster      add 3 co-located neighbour beacons and calibrate
//	-faults       inject impairments before processing (see -faults help)
//	-metrics      print the pipeline metrics snapshot as JSON after the run
//	-pprof        serve net/http/pprof and /metrics on this address
//	-v            verbose diagnostics
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"locble"
	"locble/internal/faults"
)

func main() {
	var (
		bx       = flag.Float64("x", 6, "beacon x (m)")
		by       = flag.Float64("y", 3, "beacon y (m)")
		envName  = flag.String("env", "los", "environment: los|plos|nlos")
		phone    = flag.String("phone", "iphone6s", "phone profile")
		beacon   = flag.String("beacon", "estimote", "beacon hardware")
		seed     = flag.Int64("seed", 1, "simulation seed")
		lossF    = flag.String("loss", "squared", "regression loss: squared|huber|tukey")
		replay   = flag.String("replay", "", "analyze a saved trace file (see locble-trace -save)")
		faultsF  = flag.String("faults", "", "comma-separated fault injectors (\"-faults help\" lists them)")
		navigate = flag.Bool("navigate", false, "navigate to the estimate after measuring")
		trackF   = flag.Bool("track", false, "continuous sliding-window tracking")
		fleetF   = flag.Bool("fleet", false, "fleet serving demo: batched multi-beacon ingest over the loopback push op")
		fleetN   = flag.Int("fleet-beacons", 12, "beacons to track in the fleet demo")
		storeF   = flag.String("store", "", "durable checkpoint store directory for -fleet/-router/-serve (survives restarts)")
		routerF  = flag.String("router", "", "multi-node routing demo: a node count (loopback cluster, e.g. 3) or comma-separated fleet server addresses")
		drainF   = flag.String("drain", "", "with -router addresses: drain this node mid-run (loopback mode picks one automatically)")
		serveF   = flag.Int("serve", -1, "run a standalone fleet server on this port (0 = ephemeral) until interrupted")
		codecF   = flag.String("codec", "", "wire codec for -serve/-router: json|binary (default: negotiate binary, fall back to json)")
		clusterF = flag.Bool("cluster", false, "place neighbour beacons and calibrate")
		metricsF = flag.Bool("metrics", false, "print the pipeline metrics snapshot as JSON after the run")
		pprofF   = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. 127.0.0.1:6060)")
		verbose  = flag.Bool("v", false, "verbose diagnostics")
	)
	flag.Parse()

	startDebugServer(*pprofF)

	if *faultsF == "help" {
		printFaultsHelp()
		return
	}
	if *serveF >= 0 {
		if err := runServe(*serveF, *storeF, *codecF); err != nil {
			fmt.Fprintln(os.Stderr, "locble:", err)
			os.Exit(1)
		}
		return
	}
	if *routerF != "" {
		if err := runRouter(*routerF, *fleetN, *storeF, *drainF, *codecF, *metricsF, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "locble:", err)
			os.Exit(1)
		}
		return
	}
	if *fleetF {
		if err := runFleet(*fleetN, *storeF, *metricsF, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "locble:", err)
			os.Exit(1)
		}
		return
	}
	if *replay != "" {
		if err := runReplay(*replay, *metricsF, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "locble:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*bx, *by, *envName, *phone, *beacon, *seed, *lossF, *faultsF, *navigate, *trackF, *clusterF, *metricsF, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "locble:", err)
		os.Exit(1)
	}
}

// startDebugServer serves net/http/pprof (on the default mux, via the
// blank import) plus the process-wide metrics snapshot at /metrics.
func startDebugServer(addr string) {
	if addr == "" {
		return
	}
	http.Handle("/metrics", locble.MetricsHandler())
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "locble: pprof server:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/ and /metrics\n", addr)
}

// dumpMetrics prints the engine-scoped snapshot merged with the
// process-wide one (sigproc / estimate / netproto instrumentation).
func dumpMetrics(sys *locble.System) {
	fmt.Println("\nmetrics:")
	sys.Metrics().Merge("", locble.ProcessMetrics()).WriteJSON(os.Stdout)
}

// cannedFaults maps the -faults spellings to preconfigured injectors —
// enough to demo every degradation path from the command line.
var cannedFaults = map[string]struct {
	fault faults.Fault
	desc  string
}{
	"dropout":  {faults.DropoutBurst{Start: 3, Duration: 2}, "2 s RSS dropout burst at t=3 s"},
	"stall":    {faults.ScannerStall{Start: 2, Duration: 1.5}, "BLE scanner stalled 1.5 s at t=2 s"},
	"drop":     {faults.RandomDrop{Prob: 0.3}, "30% i.i.d. advertising-packet loss"},
	"nan":      {faults.NonFiniteRSSI{Prob: 0.2}, "20% NaN/Inf RSSI readings"},
	"clip":     {faults.ClipRSSI{Floor: -72, Ceil: -58}, "receiver clipping to [-72, -58] dBm"},
	"dupes":    {faults.DuplicateReports{Prob: 0.3}, "30% duplicated scan reports"},
	"reorder":  {faults.ReorderReports{Window: 6}, "scan reports shuffled in windows of 6"},
	"skew":     {faults.ClockSkew{Offset: 4}, "BLE clock 4 s ahead of the IMU"},
	"jitter":   {faults.JitterTimestamps{Sigma: 0.05}, "50 ms Gaussian timestamp jitter"},
	"truncate": {faults.TruncateWindow{Keep: 2.5}, "measurement cut off after 2.5 s"},
	"imudrop":  {faults.IMUDropout{Start: 4, Duration: 2}, "2 s IMU dropout at t=4 s"},
	"imusat":   {faults.IMUSaturate{MaxAccel: 9}, "accelerometer railing at ±9 m/s²"},
	"corrupt":  {faults.CorruptPDU{BitProb: 0.01}, "1%/bit PDU corruption on the air"},
	"impulse":  {faults.ImpulseBurst{Start: 2, Duration: 4, Prob: 0.2, DeltaDB: 20}, "impulsive interference: 20% of readings +20 dB in t=[2,6) s"},
	"clone":    {faults.BeaconClone{OffsetDB: -25}, "adversarial clone advertising the target's identity at -25 dB"},
	"decay":    {faults.TxPowerDecay{Start: 1, RatePerS: 1.5}, "TX power decaying 1.5 dB/s from t=1 s (dying battery)"},
	"outliers": {faults.OutlierRun{Start: 3, Duration: 1.5, DeltaDB: 18}, "coordinated +18 dB outlier run in t=[3,4.5) s"},
}

func printFaultsHelp() {
	fmt.Println("fault injectors (-faults a,b,...):")
	for _, name := range []string{"dropout", "stall", "drop", "nan", "clip", "dupes",
		"reorder", "skew", "jitter", "truncate", "imudrop", "imusat", "corrupt",
		"impulse", "clone", "decay", "outliers"} {
		fmt.Printf("  %-9s %s\n", name, cannedFaults[name].desc)
	}
}

// parseFaults resolves a comma-separated -faults spec.
func parseFaults(spec string) ([]faults.Fault, error) {
	if spec == "" {
		return nil, nil
	}
	var fs []faults.Fault
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		if name == "" {
			continue
		}
		c, ok := cannedFaults[name]
		if !ok {
			return nil, fmt.Errorf("unknown fault %q (try -faults help)", name)
		}
		fs = append(fs, c.fault)
	}
	return fs, nil
}

func run(bx, by float64, envName, phoneName, beaconName string, seed int64, lossName, faultSpec string, navigate, trackOn, clusterOn, metricsOn, verbose bool) error {
	envClass, err := parseEnv(envName)
	if err != nil {
		return err
	}
	loss, err := locble.ParseLoss(lossName)
	if err != nil {
		return err
	}
	injectors, err := parseFaults(faultSpec)
	if err != nil {
		return err
	}
	phone, err := parsePhone(phoneName)
	if err != nil {
		return err
	}
	tx, err := parseBeacon(beaconName)
	if err != nil {
		return err
	}

	beacons := []locble.BeaconSpec{{Name: "target", X: bx, Y: by, Tx: tx}}
	if clusterOn {
		beacons = append(beacons,
			locble.BeaconSpec{Name: "n1", X: bx + 0.3, Y: by, Tx: tx},
			locble.BeaconSpec{Name: "n2", X: bx, Y: by + 0.3, Tx: tx},
			locble.BeaconSpec{Name: "n3", X: bx + 0.3, Y: by + 0.3, Tx: tx},
		)
	}

	fmt.Printf("simulating measurement: beacon %q at (%.1f, %.1f) m, %s, %s, %s\n",
		"target", bx, by, envClass, phone.Name, tx.Name)
	fmt.Println("observer: L-shaped walk, 4 m + 4 m")

	sys, err := locble.New(locble.WithLoss(loss))
	if err != nil {
		return err
	}
	if metricsOn {
		defer dumpMetrics(sys)
	}
	plan := locble.LShapeWalk(0, 4, 4)
	if trackOn {
		// A patrol loop gives the tracker continuously fresh geometry.
		plan = locble.WalkPlan{Segments: []locble.WalkSegment{
			{Heading: 0, Distance: 6},
			{Heading: math.Pi / 2, Distance: 4},
			{Heading: math.Pi, Distance: 6},
			{Heading: -math.Pi / 2, Distance: 4},
		}}
	}
	trace, err := locble.Simulate(locble.Scenario{
		Beacons:      beacons,
		ObserverPlan: plan,
		Phone:        phone,
		EnvModel:     locble.StaticEnv(envClass),
		Seed:         seed,
	})
	if err != nil {
		return err
	}
	if len(injectors) > 0 {
		faults.Apply(trace, seed, injectors...)
		fmt.Printf("injected faults: %s\n", faults.Chain(injectors...).Name())
	}

	if trackOn {
		fixes, err := sys.TrackSmoothed(trace, "target", 8, 2, 0)
		if err != nil {
			return err
		}
		fmt.Println("\ncontinuous tracking (smoothed fixes):")
		for _, f := range fixes {
			fmt.Printf("  t=%5.1f s  (%5.2f, %5.2f) m  err %.2f m\n",
				f.T, f.Position.X, f.Position.Y, math.Hypot(f.Position.X-bx, f.Position.Y-by))
		}
		return nil
	}
	if verbose {
		obsCount := 0
		for _, o := range trace.Observations {
			obsCount += len(o)
		}
		fmt.Printf("trace: %.1f s, %d IMU samples, %d scan reports\n",
			trace.Duration, len(trace.IMU.Samples), obsCount)
	}

	var pos *locble.Position
	if clusterOn {
		p, cres, err := sys.LocateCalibrated(trace, "target")
		if err != nil {
			return err
		}
		pos = p
		fmt.Printf("cluster: %d members joined\n", cres.ClusterSize)
		if verbose {
			for _, m := range cres.Members {
				fmt.Printf("  %-8s matched=%-5v weight=%.2f\n", m.Name, m.Matched, m.Weight)
			}
		}
	} else {
		p, err := sys.Locate(trace, "target")
		if err != nil {
			if h := locble.HealthFromError(err); h.Status == locble.HealthRejected {
				fmt.Printf("\nmeasurement rejected: %s\n", h)
				return nil
			}
			return err
		}
		pos = p
	}

	fmt.Printf("\nestimate: (%.2f, %.2f) m  range %.2f m  confidence %.2f\n",
		pos.X, pos.Y, pos.Range, pos.Confidence)
	fmt.Printf("health: %s\n", pos.Health.String())
	fmt.Printf("environment: %s   path-loss exponent: %.2f\n", pos.Environment, pos.PathLossExponent)
	fmt.Printf("true error: %.2f m\n", math.Hypot(pos.X-bx, pos.Y-by))
	if pos.Ambiguous && pos.Mirror != nil {
		fmt.Printf("ambiguous: mirror candidate at (%.2f, %.2f)\n", pos.Mirror.X, pos.Mirror.Y)
	}

	if navigate {
		fmt.Println("\nnavigation:")
		nav := sys.Navigator(pos)
		// Walk in 0.7 m steps toward the advice until arrival.
		for step := 0; step < 40; step++ {
			adv := nav.Advise()
			if adv.Arrived {
				x, y := nav.Position()
				fmt.Printf("  arrived after %d steps at (%.2f, %.2f); true miss %.2f m\n",
					step, x, y, math.Hypot(x-bx, y-by))
				return nil
			}
			if verbose {
				fmt.Printf("  step %2d: %.2f m to go, bearing %.0f°\n",
					step, adv.Distance, adv.Bearing*180/math.Pi)
			}
			nav.Update(0.7, adv.Bearing)
		}
		fmt.Println("  gave up after 40 steps")
	}
	return nil
}

// runReplay analyzes every beacon of a saved trace.
func runReplay(path string, metricsOn, verbose bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := locble.LoadTrace(f)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %s: %.1f s, %d beacons, phone %s\n",
		path, tr.Duration, len(tr.Observations), tr.Phone.Name)
	sys, err := locble.New()
	if err != nil {
		return err
	}
	if metricsOn {
		defer dumpMetrics(sys)
	}
	for _, spec := range tr.Beacons {
		pos, err := sys.Locate(tr, spec.Name)
		if err != nil {
			fmt.Printf("  %-12s no estimate: %v\n", spec.Name, err)
			continue
		}
		fmt.Printf("  %-12s est (%.2f, %.2f) m  range %.2f  conf %.2f  env %s  health %s\n",
			spec.Name, pos.X, pos.Y, pos.Range, pos.Confidence, pos.Environment, pos.Health.String())
		if verbose {
			fmt.Printf("               true (%.2f, %.2f), error %.2f m\n",
				spec.X, spec.Y, math.Hypot(pos.X-spec.X, pos.Y-spec.Y))
		}
	}
	return nil
}

func parseEnv(s string) (locble.Environment, error) {
	switch strings.ToLower(s) {
	case "los":
		return locble.LOS, nil
	case "plos", "p-los":
		return locble.PLOS, nil
	case "nlos":
		return locble.NLOS, nil
	}
	return 0, fmt.Errorf("unknown environment %q", s)
}

func parsePhone(s string) (locble.DeviceProfile, error) {
	switch strings.ToLower(s) {
	case "iphone5s":
		return locble.IPhone5s, nil
	case "iphone6s":
		return locble.IPhone6s, nil
	case "nexus5x":
		return locble.Nexus5x, nil
	case "nexus6p":
		return locble.Nexus6P, nil
	case "moto", "motonexus6":
		return locble.MotoNexus6, nil
	}
	return locble.DeviceProfile{}, fmt.Errorf("unknown phone %q", s)
}

func parseBeacon(s string) (locble.BeaconHardware, error) {
	switch strings.ToLower(s) {
	case "estimote":
		return locble.EstimoteBeacon, nil
	case "radbeacon":
		return locble.RadBeaconUSB, nil
	case "ios":
		return locble.IOSDeviceTx, nil
	}
	return locble.BeaconHardware{}, fmt.Errorf("unknown beacon %q", s)
}
