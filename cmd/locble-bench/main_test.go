package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestBenchListAndSingle builds the binary and exercises -list plus one
// quick experiment end to end.
func TestBenchListAndSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := t.TempDir() + "/locble-bench"
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	for _, want := range []string{"fig2", "table1", "fig15", "ext-3d"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("-list output missing %q", want)
		}
	}

	out, err = exec.Command(bin, "-quick", "-run", "fig8").CombinedOutput()
	if err != nil {
		t.Fatalf("-run fig8: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "step-count accuracy") {
		t.Errorf("fig8 output missing metric row:\n%s", out)
	}

	if out, err := exec.Command(bin, "-run", "nonexistent").CombinedOutput(); err == nil {
		t.Errorf("unknown experiment should fail, got:\n%s", out)
	}
}
