// Command locble-bench regenerates the paper's evaluation: every table
// and figure from Sec. 7 (plus the ablation studies DESIGN.md calls out)
// as text rows/series.
//
// Usage:
//
//	locble-bench              # run everything (takes a few minutes)
//	locble-bench -quick       # reduced trial counts
//	locble-bench -run fig11a  # one experiment by ID
//	locble-bench -list        # list experiment IDs
//	locble-bench -seed 7      # change the simulation seed
//	locble-bench -outdir out  # also save per-experiment files
//	locble-bench -json f.json # instrumented pipeline benchmark instead of
//	                          # the experiments: stage latencies + estimate
//	                          # error as machine-readable JSON
//	locble-bench -pprof addr  # serve net/http/pprof and /metrics while running
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"time"

	"locble"
	"locble/internal/experiments"
	"locble/internal/pipebench"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced trial counts")
		runID    = flag.String("run", "", "run a single experiment by ID")
		list     = flag.Bool("list", false, "list experiment IDs")
		seed     = flag.Int64("seed", 1, "simulation seed")
		outdir   = flag.String("outdir", "", "also write each experiment's output to <outdir>/<id>.txt")
		jsonOut  = flag.String("json", "", "run the instrumented pipeline benchmark and write JSON to this file")
		trials   = flag.Int("trials", 25, "trial count for the -json pipeline benchmark")
		metricsF = flag.Bool("metrics", false, "print the process metrics snapshot as JSON when done")
		pprofF   = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. 127.0.0.1:6060)")
	)
	flag.Parse()

	if *pprofF != "" {
		http.Handle("/metrics", locble.MetricsHandler())
		go func() {
			if err := http.ListenAndServe(*pprofF, nil); err != nil {
				fmt.Fprintln(os.Stderr, "locble-bench: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/ and /metrics\n", *pprofF)
	}
	if *metricsF {
		defer locble.ProcessMetrics().WriteJSON(os.Stdout)
	}

	if *jsonOut != "" {
		if err := runPipelineBench(*seed, *trials, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "locble-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := experiments.Options{Seed: *seed, Quick: *quick}
	entries := experiments.All()
	if *runID != "" {
		e, err := experiments.ByID(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		entries = []experiments.Entry{e}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	failures := 0
	for _, e := range entries {
		start := time.Now()
		out, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failures++
			continue
		}
		out.Render(os.Stdout)
		if *outdir != "" {
			f, err := os.Create(filepath.Join(*outdir, e.ID+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				failures++
			} else {
				out.Render(f)
				f.Close()
			}
		}
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// runPipelineBench runs the shared instrumented pipeline benchmark
// (internal/pipebench, also behind cmd/benchgate): LocateAll over
// repeated default-scenario simulations, reporting stage-level latency,
// the true-position error distribution, and per-trial MemStats-derived
// allocation deltas.
func runPipelineBench(seed int64, trials int, path string) error {
	rep, err := pipebench.Run(pipebench.Config{Seed: seed, Trials: trials, PerTrial: true})
	if err != nil {
		return err
	}
	if err := rep.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("pipeline bench: %s -> %s\n", rep.Summary(), path)
	return nil
}
