// Command locble-bench regenerates the paper's evaluation: every table
// and figure from Sec. 7 (plus the ablation studies DESIGN.md calls out)
// as text rows/series.
//
// Usage:
//
//	locble-bench              # run everything (takes a few minutes)
//	locble-bench -quick       # reduced trial counts
//	locble-bench -run fig11a  # one experiment by ID
//	locble-bench -list        # list experiment IDs
//	locble-bench -seed 7      # change the simulation seed
//	locble-bench -outdir out  # also save per-experiment files
//	locble-bench -json f.json # instrumented pipeline benchmark instead of
//	                          # the experiments: stage latencies + estimate
//	                          # error as machine-readable JSON
//	locble-bench -pprof addr  # serve net/http/pprof and /metrics while running
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"locble"
	"locble/internal/experiments"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced trial counts")
		runID    = flag.String("run", "", "run a single experiment by ID")
		list     = flag.Bool("list", false, "list experiment IDs")
		seed     = flag.Int64("seed", 1, "simulation seed")
		outdir   = flag.String("outdir", "", "also write each experiment's output to <outdir>/<id>.txt")
		jsonOut  = flag.String("json", "", "run the instrumented pipeline benchmark and write JSON to this file")
		trials   = flag.Int("trials", 25, "trial count for the -json pipeline benchmark")
		metricsF = flag.Bool("metrics", false, "print the process metrics snapshot as JSON when done")
		pprofF   = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. 127.0.0.1:6060)")
	)
	flag.Parse()

	if *pprofF != "" {
		http.Handle("/metrics", locble.MetricsHandler())
		go func() {
			if err := http.ListenAndServe(*pprofF, nil); err != nil {
				fmt.Fprintln(os.Stderr, "locble-bench: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/ and /metrics\n", *pprofF)
	}
	if *metricsF {
		defer locble.ProcessMetrics().WriteJSON(os.Stdout)
	}

	if *jsonOut != "" {
		if err := runPipelineBench(*seed, *trials, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "locble-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := experiments.Options{Seed: *seed, Quick: *quick}
	entries := experiments.All()
	if *runID != "" {
		e, err := experiments.ByID(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		entries = []experiments.Entry{e}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	failures := 0
	for _, e := range entries {
		start := time.Now()
		out, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failures++
			continue
		}
		out.Render(os.Stdout)
		if *outdir != "" {
			f, err := os.Create(filepath.Join(*outdir, e.ID+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				failures++
			} else {
				out.Render(f)
				f.Close()
			}
		}
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// stageStats summarizes one pipeline stage's latency histogram.
type stageStats struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	MinUS  float64 `json:"min_us"`
	MaxUS  float64 `json:"max_us"`
}

// errStats summarizes the localization error distribution.
type errStats struct {
	N      int     `json:"n"`
	MeanM  float64 `json:"mean_m"`
	P50M   float64 `json:"p50_m"`
	P90M   float64 `json:"p90_m"`
	WorstM float64 `json:"worst_m"`
}

// benchReport is the machine-readable output of the -json pipeline
// benchmark: per-stage latencies plus estimate error, with the full
// metric snapshots attached for downstream tooling.
type benchReport struct {
	Bench       string                `json:"bench"`
	Seed        int64                 `json:"seed"`
	Trials      int                   `json:"trials"`
	Beacons     int                   `json:"beacons"`
	Located     int                   `json:"located"`
	WallSeconds float64               `json:"wall_seconds"`
	Error       errStats              `json:"estimate_error_m"`
	Stages      map[string]stageStats `json:"stage_latency"`
	Engine      locble.Metrics        `json:"engine_metrics"`
	Process     locble.Metrics        `json:"process_metrics"`
}

// runPipelineBench runs LocateAll over repeated default-scenario
// simulations on one System and reports stage-level latency (from the
// engine's metric registry) plus the true-position error distribution.
func runPipelineBench(seed int64, trials int, path string) error {
	sys, err := locble.New()
	if err != nil {
		return err
	}
	beacons := []locble.BeaconSpec{
		{Name: "b0", X: 6, Y: 3},
		{Name: "b1", X: 2, Y: 5},
		{Name: "b2", X: 7, Y: 1},
	}
	truth := make(map[string][2]float64, len(beacons))
	for _, b := range beacons {
		truth[b.Name] = [2]float64{b.X, b.Y}
	}

	var errsM []float64
	start := time.Now()
	for t := 0; t < trials; t++ {
		trace, err := locble.Simulate(locble.Scenario{
			Beacons:      beacons,
			ObserverPlan: locble.LShapeWalk(0, 4, 4),
			Seed:         seed + int64(t)*101,
		})
		if err != nil {
			return err
		}
		for name, p := range sys.LocateAll(trace) {
			g := truth[name]
			errsM = append(errsM, math.Hypot(p.X-g[0], p.Y-g[1]))
		}
	}
	wall := time.Since(start)
	sort.Float64s(errsM)

	snap := sys.Metrics()
	stages := make(map[string]stageStats)
	for name, h := range snap.Histograms {
		if !strings.HasPrefix(name, "core.stage.") || !strings.HasSuffix(name, ".seconds") || h.Count == 0 {
			continue
		}
		st := strings.TrimSuffix(strings.TrimPrefix(name, "core.stage."), ".seconds")
		stages[st] = stageStats{
			Count:  h.Count,
			MeanUS: h.Mean() * 1e6,
			MinUS:  h.Min * 1e6,
			MaxUS:  h.Max * 1e6,
		}
	}
	rep := benchReport{
		Bench:       "locateall-default",
		Seed:        seed,
		Trials:      trials,
		Beacons:     len(beacons),
		Located:     len(errsM),
		WallSeconds: wall.Seconds(),
		Error:       summarizeErrors(errsM),
		Stages:      stages,
		Engine:      snap,
		Process:     locble.ProcessMetrics(),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("pipeline bench: %d trials, %d/%d located, mean error %.2f m, wall %.2f s -> %s\n",
		trials, rep.Located, trials*len(beacons), rep.Error.MeanM, rep.WallSeconds, path)
	return nil
}

func summarizeErrors(sorted []float64) errStats {
	if len(sorted) == 0 {
		return errStats{}
	}
	sum := 0.0
	for _, e := range sorted {
		sum += e
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return errStats{
		N:      len(sorted),
		MeanM:  sum / float64(len(sorted)),
		P50M:   q(0.5),
		P90M:   q(0.9),
		WorstM: sorted[len(sorted)-1],
	}
}
