// Command locble-bench regenerates the paper's evaluation: every table
// and figure from Sec. 7 (plus the ablation studies DESIGN.md calls out)
// as text rows/series.
//
// Usage:
//
//	locble-bench              # run everything (takes a few minutes)
//	locble-bench -quick       # reduced trial counts
//	locble-bench -run fig11a  # one experiment by ID
//	locble-bench -list        # list experiment IDs
//	locble-bench -seed 7      # change the simulation seed
//	locble-bench -outdir out  # also save per-experiment files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"locble/internal/experiments"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "reduced trial counts")
		runID  = flag.String("run", "", "run a single experiment by ID")
		list   = flag.Bool("list", false, "list experiment IDs")
		seed   = flag.Int64("seed", 1, "simulation seed")
		outdir = flag.String("outdir", "", "also write each experiment's output to <outdir>/<id>.txt")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := experiments.Options{Seed: *seed, Quick: *quick}
	entries := experiments.All()
	if *runID != "" {
		e, err := experiments.ByID(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		entries = []experiments.Entry{e}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	failures := 0
	for _, e := range entries {
		start := time.Now()
		out, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failures++
			continue
		}
		out.Render(os.Stdout)
		if *outdir != "" {
			f, err := os.Create(filepath.Join(*outdir, e.ID+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				failures++
			} else {
				out.Render(f)
				f.Close()
			}
		}
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		os.Exit(1)
	}
}
