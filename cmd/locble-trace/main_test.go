package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunFormats(t *testing.T) {
	// Silence stdout: the dumps are large.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	for _, format := range []string{"csv", "json"} {
		for _, what := range []string{"rss", "imu", "both"} {
			if err := run(6, 3, "los", 1, format, what, ""); err != nil {
				t.Errorf("run(%s, %s): %v", format, what, err)
			}
		}
	}
	if err := run(6, 3, "los", 1, "xml", "rss", ""); err == nil {
		t.Error("want error for unknown format")
	}
	if err := run(6, 3, "fog", 1, "csv", "rss", ""); err == nil {
		t.Error("want error for unknown environment")
	}
}

func TestRunSave(t *testing.T) {
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	path := filepath.Join(t.TempDir(), "out.trace")
	if err := run(6, 3, "nlos", 2, "csv", "rss", path); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Error("saved trace is empty")
	}
}
