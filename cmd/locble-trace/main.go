// Command locble-trace generates synthetic measurement traces — the raw
// (timestamp, beacon, RSSI, channel) scan reports plus IMU samples a
// phone would record — and dumps them as CSV or JSON for offline
// analysis.
//
// Usage:
//
//	locble-trace [flags]
//
//	-x, -y     beacon position (default 6, 3)
//	-env       los | plos | nlos
//	-seed      simulation seed
//	-format    csv | json (default csv)
//	-what      rss | imu | both (default rss)
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"locble"
)

func main() {
	var (
		bx      = flag.Float64("x", 6, "beacon x (m)")
		by      = flag.Float64("y", 3, "beacon y (m)")
		envName = flag.String("env", "los", "environment: los|plos|nlos")
		seed    = flag.Int64("seed", 1, "simulation seed")
		format  = flag.String("format", "csv", "output format: csv|json")
		what    = flag.String("what", "rss", "what to dump: rss|imu|both")
		save    = flag.String("save", "", "write the full trace (gzip JSON) to this path")
	)
	flag.Parse()

	if err := run(*bx, *by, *envName, *seed, *format, *what, *save); err != nil {
		fmt.Fprintln(os.Stderr, "locble-trace:", err)
		os.Exit(1)
	}
}

func run(bx, by float64, envName string, seed int64, format, what, save string) error {
	var envClass locble.Environment
	switch strings.ToLower(envName) {
	case "los":
		envClass = locble.LOS
	case "plos":
		envClass = locble.PLOS
	case "nlos":
		envClass = locble.NLOS
	default:
		return fmt.Errorf("unknown environment %q", envName)
	}
	tr, err := locble.Simulate(locble.Scenario{
		Beacons:      []locble.BeaconSpec{{Name: "target", X: bx, Y: by}},
		ObserverPlan: locble.LShapeWalk(0, 4, 4),
		EnvModel:     locble.StaticEnv(envClass),
		Seed:         seed,
	})
	if err != nil {
		return err
	}

	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		if err := locble.SaveTrace(f, tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace saved to %s\n", save)
	}

	switch format {
	case "json":
		return dumpJSON(tr, what)
	case "csv":
		return dumpCSV(tr, what)
	}
	return fmt.Errorf("unknown format %q", format)
}

func dumpCSV(tr *locble.Trace, what string) error {
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if what == "rss" || what == "both" {
		w.Write([]string{"t", "beacon", "rssi_dbm", "channel", "true_dist_m", "env"})
		for name, obs := range tr.Observations {
			for _, o := range obs {
				w.Write([]string{
					strconv.FormatFloat(o.T, 'f', 3, 64),
					name,
					strconv.FormatFloat(o.RSSI, 'f', 2, 64),
					strconv.Itoa(o.Channel),
					strconv.FormatFloat(o.TrueDist, 'f', 3, 64),
					o.Env.String(),
				})
			}
		}
	}
	if what == "imu" || what == "both" {
		w.Write([]string{"t", "ax", "ay", "az", "gx", "gy", "gz", "mx", "my", "mz"})
		for _, s := range tr.IMU.Samples {
			row := []string{strconv.FormatFloat(s.T, 'f', 3, 64)}
			for _, v := range [][3]float64{s.Acc, s.Gyro, s.Mag} {
				for _, c := range v {
					row = append(row, strconv.FormatFloat(c, 'f', 5, 64))
				}
			}
			w.Write(row)
		}
	}
	return w.Error()
}

func dumpJSON(tr *locble.Trace, what string) error {
	type rssRow struct {
		T       float64 `json:"t"`
		Beacon  string  `json:"beacon"`
		RSSI    float64 `json:"rssi_dbm"`
		Channel int     `json:"channel"`
	}
	type imuRow struct {
		T    float64    `json:"t"`
		Acc  [3]float64 `json:"acc"`
		Gyro [3]float64 `json:"gyro"`
		Mag  [3]float64 `json:"mag"`
	}
	out := struct {
		Duration float64  `json:"duration_s"`
		RSS      []rssRow `json:"rss,omitempty"`
		IMU      []imuRow `json:"imu,omitempty"`
	}{Duration: tr.Duration}
	if what == "rss" || what == "both" {
		for name, obs := range tr.Observations {
			for _, o := range obs {
				out.RSS = append(out.RSS, rssRow{o.T, name, o.RSSI, o.Channel})
			}
		}
	}
	if what == "imu" || what == "both" {
		for _, s := range tr.IMU.Samples {
			out.IMU = append(out.IMU, imuRow{s.T, s.Acc, s.Gyro, s.Mag})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
