package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineJSON = `{
  "bench": "locateall-default",
  "wall_seconds": 0.354,
  "allocs_per_op": 100000,
  "estimate_error_m": {"n": 75, "mean_m": 2.017, "p50_m": 1.550, "p90_m": 4.319, "worst_m": 9.164}
}`

// A run matching the baseline (slightly better on every axis).
const goodJSON = `{
  "bench": "locateall-default",
  "trials": 25,
  "located": 75,
  "wall_seconds": 0.300,
  "allocs_per_op": 90000,
  "estimate_error_m": {"n": 75, "mean_m": 2.017, "p50_m": 1.550, "p90_m": 4.319, "worst_m": 9.164}
}`

// A deliberately regressed run: wall +40 %, allocs +3x, p90 +30 %.
const regressedJSON = `{
  "bench": "locateall-default",
  "trials": 25,
  "located": 75,
  "wall_seconds": 0.500,
  "allocs_per_op": 300000,
  "estimate_error_m": {"n": 75, "mean_m": 2.6, "p50_m": 1.9, "p90_m": 5.6, "worst_m": 11.0}
}`

// TestGatePassesGoodRun pins the zero exit code for a run within
// tolerance of the baseline.
func TestGatePassesGoodRun(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baselineJSON)
	good := writeFile(t, dir, "good.json", goodJSON)
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", base, "-compare", good}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for a good run; stderr: %s", code, errb.String())
	}
}

// TestGateFailsRegressedRun pins the acceptance criterion: a
// deliberately regressed report exits nonzero and names every violated
// axis.
func TestGateFailsRegressedRun(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baselineJSON)
	bad := writeFile(t, dir, "bad.json", regressedJSON)
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", base, "-compare", bad}, &out, &errb)
	if code == 0 {
		t.Fatalf("exit 0 for a regressed run; stdout: %s", out.String())
	}
	for _, axis := range []string{"wall_seconds", "allocs_per_op", "estimate_error_m.mean_m", "estimate_error_m.p90_m"} {
		if !bytes.Contains(errb.Bytes(), []byte(axis)) {
			t.Errorf("stderr does not name violated axis %q:\n%s", axis, errb.String())
		}
	}
}

// TestGateMissingBaseline pins the error path: an absent or invalid
// baseline is a failure, never a silent pass.
func TestGateMissingBaseline(t *testing.T) {
	dir := t.TempDir()
	good := writeFile(t, dir, "good.json", goodJSON)
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", filepath.Join(dir, "nope.json"), "-compare", good}, &out, &errb); code == 0 {
		t.Fatal("exit 0 with a missing baseline")
	}
}

// TestGateLooseTolerance verifies the tolerance flags reach the gate: a
// wall regression inside a widened tolerance passes.
func TestGateLooseTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baselineJSON)
	slow := writeFile(t, dir, "slow.json", `{
	  "bench": "locateall-default",
	  "located": 75,
	  "wall_seconds": 0.48,
	  "allocs_per_op": 100000,
	  "estimate_error_m": {"n": 75, "mean_m": 2.017, "p50_m": 1.550, "p90_m": 4.319, "worst_m": 9.164}
	}`)
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", base, "-compare", slow}, &out, &errb); code == 0 {
		t.Fatal("exit 0 for +36% wall at default 10% tolerance")
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", base, "-compare", slow, "-wall-tol", "0.5"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d with -wall-tol 0.5; stderr: %s", code, errb.String())
	}
}
