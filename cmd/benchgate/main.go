// Command benchgate is the performance-regression gate: it runs the
// instrumented end-to-end pipeline benchmark (the same one behind
// locble-bench -json), writes the report, and compares wall time,
// allocations per LocateAll and the deterministic localization-error
// statistics against a committed baseline JSON. It exits nonzero on a
// regression beyond tolerance, so CI (and `make ci`) fail the build.
//
// Usage:
//
//	benchgate                         # run, write BENCH_pr4.json, gate
//	                                  # against BENCH_pr2.json
//	benchgate -baseline B.json        # choose the committed baseline
//	benchgate -out OUT.json           # where to write the fresh report
//	benchgate -compare RUN.json       # gate an existing report instead
//	                                  # of running the benchmark
//	benchgate -wall-tol 0.2           # loosen the wall-clock tolerance
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"locble/internal/pipebench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main behind testable plumbing: it returns the process exit
// code (0 pass, 1 gate violation or error, 2 flag error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseline = fs.String("baseline", "BENCH_pr2.json", "committed baseline benchmark JSON")
		out      = fs.String("out", "BENCH_pr4.json", "path for the fresh benchmark report")
		compare  = fs.String("compare", "", "gate this existing report file instead of running the benchmark")
		trials   = fs.Int("trials", 25, "benchmark trial count")
		seed     = fs.Int64("seed", 1, "base simulation seed")
		wallTol  = fs.Float64("wall-tol", 0.10, "allowed fractional wall-clock regression")
		allocTol = fs.Float64("alloc-tol", 0.10, "allowed fractional allocs-per-op regression")
		errTol   = fs.Float64("err-tol", 0.05, "allowed fractional accuracy regression")
		durTol   = fs.Float64("dur-tol", 0.35, "allowed fractional durable-store regression (fsync-bound, machine-noisy)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	base, err := pipebench.LoadBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 1
	}

	var rep *pipebench.Report
	if *compare != "" {
		rep, err = pipebench.LoadReport(*compare)
		if err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 1
		}
	} else {
		rep, err = pipebench.Run(pipebench.Config{Seed: *seed, Trials: *trials, PerTrial: true})
		if err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 1
		}
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 1
		}
		fmt.Fprintf(stdout, "benchgate: %s -> %s\n", rep.Summary(), *out)
	}

	tol := pipebench.Tolerances{Wall: *wallTol, Alloc: *allocTol, Err: *errTol, Dur: *durTol}
	violations := pipebench.Gate(rep, base, tol)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(stderr, "benchgate: FAIL:", v)
		}
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: PASS against %s (wall %.3fs ≤ %.3fs·%.0f%%, mean err %.3fm, p90 %.3fm)\n",
		*baseline, rep.WallSeconds, base.WallSeconds, (1+tol.Wall)*100, rep.Error.MeanM, rep.Error.P90M)
	return 0
}
