// Benchmarks regenerating every table and figure of the paper's
// evaluation (one Benchmark* target per experiment ID — see DESIGN.md's
// per-experiment index), plus steady-state micro-benchmarks of the
// pipeline stages. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute the full generator in Quick mode per
// iteration; their ns/op is the cost of regenerating the result, not a
// statement about the paper's metrics (those are printed by
// cmd/locble-bench and recorded in EXPERIMENTS.md).
package locble_test

import (
	"testing"

	"locble"
	"locble/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	entry, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opt := experiments.Options{Seed: 1, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i + 1)
		if _, err := entry.Run(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One bench per paper table/figure (DESIGN.md index) ----------------

func BenchmarkFig2RSSVsDistance(b *testing.B)        { benchExperiment(b, "fig2") }
func BenchmarkFig4Filtering(b *testing.B)            { benchExperiment(b, "fig4") }
func BenchmarkFig5Preprocessing(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkEnvAwareClassification(b *testing.B)   { benchExperiment(b, "sec4.1") }
func BenchmarkFig8StepTurn(b *testing.B)             { benchExperiment(b, "fig8") }
func BenchmarkFig9DTW(b *testing.B)                  { benchExperiment(b, "fig9") }
func BenchmarkTable1Environments(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkFig10bNavigation(b *testing.B)         { benchExperiment(b, "fig10b") }
func BenchmarkFig11aStationary(b *testing.B)         { benchExperiment(b, "fig11a") }
func BenchmarkFig11bMovingTarget(b *testing.B)       { benchExperiment(b, "fig11b") }
func BenchmarkFig12aDistanceSweep(b *testing.B)      { benchExperiment(b, "fig12a") }
func BenchmarkFig12bNavigationApproach(b *testing.B) { benchExperiment(b, "fig12b") }
func BenchmarkFig13aSamplingRate(b *testing.B)       { benchExperiment(b, "fig13a") }
func BenchmarkFig13bWalkLength(b *testing.B)         { benchExperiment(b, "fig13b") }
func BenchmarkFig14BeaconTypes(b *testing.B)         { benchExperiment(b, "fig14") }
func BenchmarkFig15Clustering(b *testing.B)          { benchExperiment(b, "fig15") }

// --- Ablation benches (DESIGN.md "design choices" section) -------------

func BenchmarkAblationButterworthOrder(b *testing.B) { benchExperiment(b, "ablation-bf-order") }
func BenchmarkAblationLShape(b *testing.B)           { benchExperiment(b, "ablation-lshape") }
func BenchmarkAblationRestartPolicy(b *testing.B)    { benchExperiment(b, "ablation-restart") }
func BenchmarkAblationDTWSegment(b *testing.B)       { benchExperiment(b, "ablation-dtw-segment") }
func BenchmarkAblationAKFGain(b *testing.B)          { benchExperiment(b, "ablation-akf-gain") }

// --- Extension benches (paper Sec. 9 future work, implemented) ---------

func BenchmarkExtTracking(b *testing.B)       { benchExperiment(b, "ext-tracking") }
func BenchmarkExt3D(b *testing.B)             { benchExperiment(b, "ext-3d") }
func BenchmarkExtProximity(b *testing.B)      { benchExperiment(b, "ext-proximity") }
func BenchmarkExtCrowded(b *testing.B)        { benchExperiment(b, "ext-crowded") }
func BenchmarkExtBLE5(b *testing.B)           { benchExperiment(b, "ext-ble5") }
func BenchmarkExtTrackingMoving(b *testing.B) { benchExperiment(b, "ext-tracking-moving") }

// --- Steady-state pipeline costs (Sec. 7.8 overhead) -------------------

// BenchmarkOverheadLocate measures one full pipeline run (ANF + EnvAware
// + motion tracking + joint regression) over a fixed measurement trace:
// the per-measurement CPU cost the paper's Sec. 7.8 instruments.
func BenchmarkOverheadLocate(b *testing.B) {
	sys, err := locble.New()
	if err != nil {
		b.Fatal(err)
	}
	tr, err := locble.Simulate(locble.Scenario{
		Beacons:      []locble.BeaconSpec{{Name: "b", X: 6, Y: 3}},
		ObserverPlan: locble.LShapeWalk(0, 4, 4),
		EnvModel:     locble.StaticEnv(locble.LOS),
		Seed:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Locate(tr, "b"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadCluster measures the calibrated variant over a 4-beacon
// trace (the Fig. 15 configuration).
func BenchmarkOverheadCluster(b *testing.B) {
	sys, err := locble.New()
	if err != nil {
		b.Fatal(err)
	}
	tr, err := locble.Simulate(locble.Scenario{
		Beacons: []locble.BeaconSpec{
			{Name: "b", X: 6, Y: 3},
			{Name: "n1", X: 6.3, Y: 3},
			{Name: "n2", X: 6, Y: 3.3},
			{Name: "far", X: 1, Y: 6},
		},
		ObserverPlan: locble.LShapeWalk(0, 4, 4),
		EnvModel:     locble.StaticEnv(locble.LOS),
		Seed:         2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.LocateCalibrated(tr, "b"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadSimulate measures the world simulator itself (trace
// generation is the substrate cost, not part of the paper's pipeline).
func BenchmarkOverheadSimulate(b *testing.B) {
	sc := locble.Scenario{
		Beacons:      []locble.BeaconSpec{{Name: "b", X: 6, Y: 3}},
		ObserverPlan: locble.LShapeWalk(0, 4, 4),
		EnvModel:     locble.StaticEnv(locble.LOS),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(i + 1)
		if _, err := locble.Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}
